package alloc

import (
	"errors"
	"sync"
	"testing"
)

func TestShardedAllocFreeRoundTrip(t *testing.T) {
	p, err := NewSharded(1 << 24) // 16 MiB arena: 2 MiB slabs, classes up to 128 KiB
	if err != nil {
		t.Fatal(err)
	}
	if p.AllocatedBytes() != 0 {
		t.Fatalf("fresh pool reports %d allocated bytes", p.AllocatedBytes())
	}
	// A mix of slab-class and buddy-class sizes.
	sizes := []int64{64, 100, 1024, 4096, 1 << 17, 1 << 21, 3 << 20}
	offs := make([]int64, len(sizes))
	var want int64
	for i, sz := range sizes {
		off, err := p.Alloc(sz)
		if err != nil {
			t.Fatalf("alloc %d: %v", sz, err)
		}
		offs[i] = off
		want += BlockSize(sz)
		got, err := p.SizeOf(off)
		if err != nil || got != BlockSize(sz) {
			t.Fatalf("SizeOf(%d) = %d, %v; want %d", off, got, err, BlockSize(sz))
		}
	}
	if p.AllocatedBytes() != want {
		t.Fatalf("AllocatedBytes = %d, want %d", p.AllocatedBytes(), want)
	}
	for _, off := range offs {
		if err := p.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	if p.AllocatedBytes() != 0 {
		t.Fatalf("AllocatedBytes after frees = %d, want 0", p.AllocatedBytes())
	}
	if err := p.Free(offs[0]); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestShardedDistinctOffsets(t *testing.T) {
	p, err := NewSharded(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		off, err := p.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatalf("offset %d handed out twice", off)
		}
		seen[off] = true
	}
}

func TestShardedSmallArenaDegradesToBuddy(t *testing.T) {
	// 64 KiB arena: slabBytes would be 8 KiB < slabMinBytes, so every
	// allocation must go straight to the buddy and still round-trip.
	p, err := NewSharded(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	off, err := p.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if sz, err := p.SizeOf(off); err != nil || sz != 128 {
		t.Fatalf("SizeOf = %d, %v", sz, err)
	}
	if err := p.Free(off); err != nil {
		t.Fatal(err)
	}
}

func TestShardedParentBudgetLeavesRoom(t *testing.T) {
	// Slab parents may hold at most half the arena: allocations past
	// that budget fall through to the buddy rather than starving big
	// placements — the failure mode that broke DRAM promotion on small
	// arenas.
	p, err := NewSharded(1 << 23) // 8 MiB, 1 MiB slabs
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := p.Alloc(4096); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if got := p.parentB.Load(); got > p.ArenaSize()/2 {
		t.Fatalf("slab parents hold %d bytes, budget %d", got, p.ArenaSize()/2)
	}
	// A large placement must still succeed alongside the slab load.
	if _, err := p.Alloc(2 << 20); err != nil {
		t.Fatalf("large alloc under slab load: %v", err)
	}
}

func TestShardedLiveReserveRoundTrip(t *testing.T) {
	p, err := NewSharded(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(0, MinBlock); err != nil {
		t.Fatal(err) // the engine's guard block
	}
	sizes := []int64{64, 4096, 4096, 1 << 18, 1 << 21}
	for _, sz := range sizes {
		if _, err := p.Alloc(sz); err != nil {
			t.Fatal(err)
		}
	}
	live := p.Live()
	if len(live) != len(sizes)+1 {
		t.Fatalf("Live reports %d allocations, want %d", len(live), len(sizes)+1)
	}

	// Restore into a fresh pool: every block reserves cleanly, the
	// inventory matches, and restored blocks free through the buddy.
	r, err := NewSharded(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range live {
		if err := r.Reserve(a.Off, a.Size); err != nil {
			t.Fatalf("reserve [%d,+%d): %v", a.Off, a.Size, err)
		}
	}
	restored := r.Live()
	if len(restored) != len(live) {
		t.Fatalf("restored Live reports %d allocations, want %d", len(restored), len(live))
	}
	for i := range live {
		if restored[i] != live[i] {
			t.Fatalf("restored[%d] = %+v, want %+v", i, restored[i], live[i])
		}
	}
	if r.AllocatedBytes() != p.AllocatedBytes() {
		t.Fatalf("restored AllocatedBytes = %d, want %d", r.AllocatedBytes(), p.AllocatedBytes())
	}
	for _, a := range restored {
		if a.Off == 0 {
			continue // guard block stays
		}
		if err := r.Free(a.Off); err != nil {
			t.Fatalf("free restored block at %d: %v", a.Off, err)
		}
	}
}

func TestShardedScavengeRescuesBigPlacement(t *testing.T) {
	// Fill the arena with slab traffic, free it all (leaving empty hot
	// spares pinned on their shards), then ask for a block the buddy can
	// only serve by reclaiming those spares. The scavenge retry must
	// rescue the placement instead of failing it.
	p, err := NewSharded(1 << 23) // 8 MiB, 1 MiB slabs
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for i := 0; i < 512; i++ {
		off, err := p.Alloc(4096)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		if err := p.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	// Nearly the whole arena: only satisfiable once every spare parent
	// is back in the buddy.
	off, err := p.Alloc(1 << 22)
	if err != nil {
		t.Fatalf("big placement after slab churn: %v", err)
	}
	if err := p.Free(off); err != nil {
		t.Fatal(err)
	}
	if p.AllocatedBytes() != 0 {
		t.Fatalf("AllocatedBytes = %d, want 0", p.AllocatedBytes())
	}
}

// TestShardedConcurrent is the allocator concurrency stress: parallel
// Alloc/Free/SizeOf across slab and buddy classes, meant to run under
// the race detector.
func TestShardedConcurrent(t *testing.T) {
	p, err := NewSharded(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	iters := 3000
	if testing.Short() {
		iters = 600
	}
	sizes := []int64{64, 256, 1024, 4096, 1 << 16, 1 << 21}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			held := make([]int64, 0, 16)
			heldSz := make([]int64, 0, 16)
			rng := uint64(seed)*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				sz := sizes[rng%uint64(len(sizes))]
				off, err := p.Alloc(sz)
				if err != nil {
					continue // transient arena pressure is fine
				}
				got, err := p.SizeOf(off)
				if err != nil || got != BlockSize(sz) {
					errs <- err
					return
				}
				held = append(held, off)
				heldSz = append(heldSz, sz)
				if len(held) >= 16 {
					for _, h := range held {
						if err := p.Free(h); err != nil {
							errs <- err
							return
						}
					}
					held = held[:0]
					heldSz = heldSz[:0]
				}
			}
			for _, h := range held {
				if err := p.Free(h); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.AllocatedBytes() != 0 {
		t.Fatalf("AllocatedBytes after concurrent churn = %d, want 0", p.AllocatedBytes())
	}
}

// BenchmarkShardedPoolParallel is the post-change counterpart of
// BenchmarkBuddyParallel: the same parallel alloc/free churn against
// the sharded front's slab fast path.
func BenchmarkShardedPoolParallel(b *testing.B) {
	p, err := NewSharded(1 << 26)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelAllocFree(b, p)
}
