// Package mapreduce is a small MapReduce engine whose inputs, shuffle
// files and outputs all live in the Gengar pool — the paper's MapReduce
// benchmark. Mappers and reducers are pool clients: every document read,
// intermediate partition write and shuffle read is a real pool operation,
// so job completion time reflects the memory system under test.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/simnet"
)

// KeyValue is one intermediate or output pair.
type KeyValue struct {
	Key   string
	Value string
}

// MapFunc transforms one input document into intermediate pairs.
type MapFunc func(doc string) []KeyValue

// ReduceFunc folds all values of one key into a single output value.
type ReduceFunc func(key string, values []string) string

// pacingWindow bounds virtual-clock skew among concurrent workers; see
// simnet.Gate.
const pacingWindow = 20 * time.Microsecond

// Partitioner assigns an intermediate key to a reducer in [0, reducers).
type Partitioner func(key string, reducers int) int

// HashPartition is the default partitioner.
func HashPartition(key string, reducers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers)) //nolint:gosec // load balancing
}

// RangePartition partitions by the key's first byte — reducer outputs
// concatenated in order are then globally sorted, the TeraSort trick.
func RangePartition(key string, reducers int) int {
	if len(key) == 0 {
		return 0
	}
	return int(key[0]) * reducers / 256
}

// Config shapes a job.
type Config struct {
	Mappers     int
	Reducers    int
	Partitioner Partitioner // nil selects HashPartition
}

// Stats reports a completed job. Durations are simulated.
type Stats struct {
	MapTime       time.Duration // barrier-to-barrier map phase
	ReduceTime    time.Duration
	JobTime       time.Duration // total makespan
	BytesShuffled int64
	Pairs         int64 // intermediate pairs produced
}

// Job is a prepared job bound to a pool: workers are connected clients.
type Job struct {
	cfg     Config
	mapf    MapFunc
	reducef ReduceFunc
	workers []*core.Client
}

// NewJob validates the configuration and binds worker clients. The
// worker slice must contain max(Mappers, Reducers) clients; workers are
// reused across phases like slots in a real cluster.
func NewJob(cfg Config, workers []*core.Client, mapf MapFunc, reducef ReduceFunc) (*Job, error) {
	if cfg.Mappers <= 0 || cfg.Reducers <= 0 {
		return nil, fmt.Errorf("mapreduce: %d mappers / %d reducers", cfg.Mappers, cfg.Reducers)
	}
	need := cfg.Mappers
	if cfg.Reducers > need {
		need = cfg.Reducers
	}
	if len(workers) < need {
		return nil, fmt.Errorf("mapreduce: need %d workers, have %d", need, len(workers))
	}
	if mapf == nil || reducef == nil {
		return nil, errors.New("mapreduce: nil map or reduce function")
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = HashPartition
	}
	return &Job{cfg: cfg, mapf: mapf, reducef: reducef, workers: workers}, nil
}

// storeBlob writes data as a fresh pool object and returns its address.
func storeBlob(c *core.Client, data []byte) (region.GAddr, error) {
	if len(data) == 0 {
		return region.NilGAddr, nil
	}
	addr, err := c.Malloc(int64(len(data)))
	if err != nil {
		return region.NilGAddr, err
	}
	if err := c.Write(addr, data); err != nil {
		return region.NilGAddr, err
	}
	return addr, nil
}

// storeBlobs writes each blob as a fresh pool object in one vectored
// gwrite: the blobs go out as one doorbell-batched chain per home
// server, so emitting a mapper's R shuffle partitions costs roughly one
// round trip instead of R. Blobs must be non-empty.
func storeBlobs(c *core.Client, blobs [][]byte) ([]region.GAddr, error) {
	addrs := make([]region.GAddr, len(blobs))
	for i, b := range blobs {
		addr, err := c.Malloc(int64(len(b)))
		if err != nil {
			return nil, err
		}
		addrs[i] = addr
	}
	if err := c.WriteMulti(addrs, blobs); err != nil {
		return nil, err
	}
	return addrs, nil
}

// encodePairs serializes intermediate pairs.
func encodePairs(kvs []KeyValue) []byte {
	var w rpc.Writer
	w.U32(uint32(len(kvs)))
	for _, kv := range kvs {
		w.Str(kv.Key)
		w.Str(kv.Value)
	}
	return w.Bytes()
}

// decodePairs deserializes intermediate pairs.
func decodePairs(data []byte) ([]KeyValue, error) {
	r := rpc.NewReader(data)
	n := int(r.U32())
	kvs := make([]KeyValue, 0, n)
	for i := 0; i < n; i++ {
		kvs = append(kvs, KeyValue{Key: r.Str(), Value: r.Str()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: corrupt partition: %w", err)
	}
	return kvs, nil
}

type partition struct {
	addr region.GAddr
	size int
}

// Run executes the job over input documents already resident in the pool
// (as produced by StoreInputs) and returns the reduced output plus
// simulated phase timings.
func (j *Job) Run(inputs []Input) (map[string]string, Stats, error) {
	var stats Stats
	// Common starting line at the fabric frontier, so input-loading
	// traffic's resource watermarks don't stall the first map reads.
	for _, w := range j.workers {
		w.AdvanceToFrontier()
	}
	start := maxWorkerClock(j.workers)
	for _, w := range j.workers {
		w.AdvanceTo(start)
	}

	// --- map phase ---
	parts := make([][]partition, j.cfg.Mappers) // [mapper][reducer]
	errs := make([]error, j.cfg.Mappers)
	var pairs, shuffled metrics.Counter
	var wg sync.WaitGroup
	mapGate := simnet.NewGate(pacingWindow)
	mapPaces := make([]*simnet.GateHandle, j.cfg.Mappers)
	for m := range mapPaces {
		mapPaces[m] = mapGate.Join(start)
	}
	for m := 0; m < j.cfg.Mappers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			defer mapPaces[m].Leave()
			worker := j.workers[m]
			buckets := make([][]KeyValue, j.cfg.Reducers)
			for i := m; i < len(inputs); i += j.cfg.Mappers {
				mapPaces[m].Advance(worker.Now())
				doc := make([]byte, inputs[i].Size)
				if err := worker.Read(inputs[i].Addr, doc); err != nil {
					errs[m] = err
					return
				}
				for _, kv := range j.mapf(string(doc)) {
					r := j.cfg.Partitioner(kv.Key, j.cfg.Reducers)
					buckets[r] = append(buckets[r], kv)
					pairs.Inc()
				}
			}
			// Emit all non-empty shuffle partitions in one vectored write.
			parts[m] = make([]partition, j.cfg.Reducers)
			var blobs [][]byte
			var rs []int
			for r, kvs := range buckets {
				if len(kvs) == 0 {
					continue
				}
				blobs = append(blobs, encodePairs(kvs))
				rs = append(rs, r)
			}
			addrs, err := storeBlobs(worker, blobs)
			if err != nil {
				errs[m] = err
				return
			}
			for i, r := range rs {
				parts[m][r] = partition{addr: addrs[i], size: len(blobs[i])}
				shuffled.Add(int64(len(blobs[i])))
			}
			// Publish the partitions before the shuffle barrier: the
			// reducers are other clients.
			if err := worker.Flush(); err != nil {
				errs[m] = err
			}
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, fmt.Errorf("mapreduce: map phase: %w", err)
		}
	}
	mapEnd := maxWorkerClock(j.workers)
	stats.MapTime = mapEnd.Sub(start)

	// --- shuffle barrier: reducers must not start before the last map ---
	for _, w := range j.workers {
		w.AdvanceTo(mapEnd)
	}

	// --- reduce phase ---
	outs := make([]map[string]string, j.cfg.Reducers)
	rerrs := make([]error, j.cfg.Reducers)
	redGate := simnet.NewGate(pacingWindow)
	redPaces := make([]*simnet.GateHandle, j.cfg.Reducers)
	for r := range redPaces {
		redPaces[r] = redGate.Join(mapEnd)
	}
	for r := 0; r < j.cfg.Reducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer redPaces[r].Leave()
			worker := j.workers[r]
			byKey := make(map[string][]string)
			for m := 0; m < j.cfg.Mappers; m++ {
				redPaces[r].Advance(worker.Now())
				p := parts[m][r]
				if p.size == 0 {
					continue
				}
				blob := make([]byte, p.size)
				if err := worker.Read(p.addr, blob); err != nil {
					rerrs[r] = err
					return
				}
				kvs, err := decodePairs(blob)
				if err != nil {
					rerrs[r] = err
					return
				}
				for _, kv := range kvs {
					byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
				}
			}
			keys := make([]string, 0, len(byKey))
			for k := range byKey {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make(map[string]string, len(keys))
			var outBlob rpc.Writer
			for _, k := range keys {
				v := j.reducef(k, byKey[k])
				out[k] = v
				outBlob.Str(k)
				outBlob.Str(v)
			}
			// Persist the reducer output into the pool, as a real job would.
			if _, err := storeBlob(worker, outBlob.Bytes()); err != nil {
				rerrs[r] = err
				return
			}
			outs[r] = out
		}(r)
	}
	wg.Wait()
	for _, err := range rerrs {
		if err != nil {
			return nil, stats, fmt.Errorf("mapreduce: reduce phase: %w", err)
		}
	}
	end := maxWorkerClock(j.workers)
	stats.ReduceTime = end.Sub(mapEnd)
	stats.JobTime = end.Sub(start)
	stats.BytesShuffled = shuffled.Load()
	stats.Pairs = pairs.Load()

	result := make(map[string]string)
	for _, out := range outs {
		for k, v := range out {
			result[k] = v
		}
	}
	return result, stats, nil
}

// Input is one document resident in the pool.
type Input struct {
	Addr region.GAddr
	Size int
}

// StoreInputs writes documents into the pool in one vectored write and
// returns their handles.
func StoreInputs(c *core.Client, docs []string) ([]Input, error) {
	blobs := make([][]byte, 0, len(docs))
	for i, d := range docs {
		if len(d) == 0 {
			return nil, fmt.Errorf("mapreduce: empty document %d", i)
		}
		blobs = append(blobs, []byte(d))
	}
	addrs, err := storeBlobs(c, blobs)
	if err != nil {
		return nil, err
	}
	inputs := make([]Input, 0, len(docs))
	for i, d := range docs {
		inputs = append(inputs, Input{Addr: addrs[i], Size: len(d)})
	}
	// Publish: mappers are different clients, so the driver's proxied
	// writes must reach NVM before the map phase reads the documents.
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return inputs, nil
}

func maxWorkerClock(workers []*core.Client) simnet.Time {
	var t simnet.Time
	for _, w := range workers {
		if now := w.Now(); now > t {
			t = now
		}
	}
	return t
}
