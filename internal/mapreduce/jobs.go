package mapreduce

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// WordCount returns the classic word-count job functions.
func WordCount() (MapFunc, ReduceFunc) {
	mapf := func(doc string) []KeyValue {
		words := strings.Fields(doc)
		kvs := make([]KeyValue, 0, len(words))
		for _, w := range words {
			kvs = append(kvs, KeyValue{Key: w, Value: "1"})
		}
		return kvs
	}
	reducef := func(key string, values []string) string {
		return strconv.Itoa(len(values))
	}
	return mapf, reducef
}

// Grep returns a job emitting every word containing pattern, with its
// occurrence count.
func Grep(pattern string) (MapFunc, ReduceFunc) {
	mapf := func(doc string) []KeyValue {
		var kvs []KeyValue
		for _, w := range strings.Fields(doc) {
			if strings.Contains(w, pattern) {
				kvs = append(kvs, KeyValue{Key: w, Value: "1"})
			}
		}
		return kvs
	}
	reducef := func(key string, values []string) string {
		return strconv.Itoa(len(values))
	}
	return mapf, reducef
}

// Sort returns a distributed-sort job: keys pass through, and with
// RangePartition the concatenated reducer outputs are globally sorted.
func Sort() (MapFunc, ReduceFunc) {
	mapf := func(doc string) []KeyValue {
		words := strings.Fields(doc)
		kvs := make([]KeyValue, 0, len(words))
		for _, w := range words {
			kvs = append(kvs, KeyValue{Key: w, Value: ""})
		}
		return kvs
	}
	reducef := func(key string, values []string) string {
		return strconv.Itoa(len(values))
	}
	return mapf, reducef
}

// Corpus generates docs synthetic documents of about docWords words
// each, drawn zipfian from a vocabulary — the skewed text a wordcount
// motivates caching with. Deterministic for a given seed.
func Corpus(seed int64, docs, docWords, vocabulary int) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(vocabulary-1))
	out := make([]string, docs)
	var b strings.Builder
	for d := range out {
		b.Reset()
		for w := 0; w < docWords; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "w%04d", zipf.Uint64())
		}
		out[d] = b.String()
	}
	return out
}
