package mapreduce

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/server"
)

func testCluster(t *testing.T) *server.Cluster {
	t.Helper()
	cfg := config.Default()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 22
	cfg.DRAMBufferBytes = 1 << 17
	cfg.RingBytes = 1 << 23
	cfg.Hotness.PlanEvery = 100 * time.Microsecond
	c, err := server.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func workers(t *testing.T, c *server.Cluster, n int) []*core.Client {
	t.Helper()
	out := make([]*core.Client, n)
	for i := range out {
		cl, err := core.Connect(c, "worker"+strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		out[i] = cl
	}
	return out
}

// localWordCount is the reference implementation.
func localWordCount(docs []string) map[string]int {
	counts := make(map[string]int)
	for _, d := range docs {
		for _, w := range strings.Fields(d) {
			counts[w]++
		}
	}
	return counts
}

func TestNewJobValidation(t *testing.T) {
	c := testCluster(t)
	ws := workers(t, c, 2)
	mapf, reducef := WordCount()
	if _, err := NewJob(Config{Mappers: 0, Reducers: 1}, ws, mapf, reducef); err == nil {
		t.Fatal("zero mappers accepted")
	}
	if _, err := NewJob(Config{Mappers: 4, Reducers: 1}, ws, mapf, reducef); err == nil {
		t.Fatal("too few workers accepted")
	}
	if _, err := NewJob(Config{Mappers: 1, Reducers: 1}, ws, nil, reducef); err == nil {
		t.Fatal("nil mapf accepted")
	}
}

func TestWordCountMatchesReference(t *testing.T) {
	c := testCluster(t)
	ws := workers(t, c, 3)
	docs := Corpus(42, 8, 200, 100)
	inputs, err := StoreInputs(ws[0], docs)
	if err != nil {
		t.Fatal(err)
	}
	mapf, reducef := WordCount()
	job, err := NewJob(Config{Mappers: 3, Reducers: 2}, ws, mapf, reducef)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := job.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := localWordCount(docs)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != strconv.Itoa(n) {
			t.Fatalf("count[%s] = %s, want %d", w, got[w], n)
		}
	}
	if stats.JobTime <= 0 || stats.MapTime <= 0 || stats.ReduceTime <= 0 {
		t.Fatalf("timings: %+v", stats)
	}
	if stats.JobTime < stats.MapTime || stats.JobTime < stats.ReduceTime {
		t.Fatalf("phase times exceed job time: %+v", stats)
	}
	if stats.BytesShuffled <= 0 || stats.Pairs != int64(8*200) {
		t.Fatalf("shuffle stats: %+v", stats)
	}
}

func TestGrepFindsOnlyMatches(t *testing.T) {
	c := testCluster(t)
	ws := workers(t, c, 2)
	docs := []string{"alpha beta gamma", "beta delta", "epsilon beta"}
	inputs, err := StoreInputs(ws[0], docs)
	if err != nil {
		t.Fatal(err)
	}
	mapf, reducef := Grep("bet")
	job, err := NewJob(Config{Mappers: 2, Reducers: 2}, ws, mapf, reducef)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := job.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["beta"] != "3" {
		t.Fatalf("grep result: %v", got)
	}
}

func TestSortWithRangePartition(t *testing.T) {
	c := testCluster(t)
	ws := workers(t, c, 2)
	docs := []string{"m b z a", "q c y", "a k"}
	inputs, err := StoreInputs(ws[0], docs)
	if err != nil {
		t.Fatal(err)
	}
	mapf, reducef := Sort()
	job, err := NewJob(Config{Mappers: 2, Reducers: 2, Partitioner: RangePartition}, ws, mapf, reducef)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := job.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Every distinct word present, duplicate counted.
	if len(got) != 8 {
		t.Fatalf("distinct keys = %d: %v", len(got), got)
	}
	if got["a"] != "2" {
		t.Fatalf(`got["a"] = %q`, got["a"])
	}
}

func TestRangePartitionOrdering(t *testing.T) {
	// Keys assigned to reducer i must all be <= keys of reducer i+1.
	for _, reducers := range []int{1, 2, 4, 8} {
		prev := -1
		for b := 0; b < 256; b++ {
			r := RangePartition(string(rune(b)), reducers)
			if r < prev {
				t.Fatalf("partition not monotonic at byte %d", b)
			}
			if r < 0 || r >= reducers {
				t.Fatalf("partition %d out of range", r)
			}
			prev = r
		}
	}
	if RangePartition("", 4) != 0 {
		t.Fatal("empty key partition")
	}
}

func TestHashPartitionRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		r := HashPartition(strconv.Itoa(i), 7)
		if r < 0 || r >= 7 {
			t.Fatalf("partition %d out of range", r)
		}
	}
}

func TestEncodeDecodePairs(t *testing.T) {
	kvs := []KeyValue{{"a", "1"}, {"bb", "22"}, {"", ""}}
	got, err := decodePairs(encodePairs(kvs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != kvs[0] || got[1] != kvs[1] || got[2] != kvs[2] {
		t.Fatalf("roundtrip: %v", got)
	}
	if _, err := decodePairs([]byte{0, 0, 0, 9}); err == nil {
		t.Fatal("corrupt blob accepted")
	}
}

func TestStoreInputsRejectsEmptyDoc(t *testing.T) {
	c := testCluster(t)
	ws := workers(t, c, 1)
	if _, err := StoreInputs(ws[0], []string{"ok", ""}); err == nil {
		t.Fatal("empty document accepted")
	}
}

func TestCorpusDeterministicAndSkewed(t *testing.T) {
	a := Corpus(7, 4, 100, 50)
	b := Corpus(7, 4, 100, 50)
	if len(a) != 4 || a[0] != b[0] || a[3] != b[3] {
		t.Fatal("corpus not deterministic")
	}
	counts := localWordCount(a)
	if len(counts) < 2 {
		t.Fatal("degenerate vocabulary")
	}
	// Zipf: the most common word should dominate.
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 400/len(counts) {
		t.Fatalf("no skew: max count %d over %d words", maxN, len(counts))
	}
}
