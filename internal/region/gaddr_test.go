package region

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGAddrRoundtripProperty(t *testing.T) {
	f := func(server uint16, off int64) bool {
		if off < 0 {
			off = -off
		}
		off %= MaxOffset + 1
		a, err := NewGAddr(server, off)
		if err != nil {
			return false
		}
		return a.Server() == server && a.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewGAddrValidation(t *testing.T) {
	if _, err := NewGAddr(1, -1); !errors.Is(err, ErrBadAddress) {
		t.Fatal("negative offset accepted")
	}
	if _, err := NewGAddr(1, MaxOffset+1); !errors.Is(err, ErrBadAddress) {
		t.Fatal("oversized offset accepted")
	}
	if _, err := NewGAddr(1, MaxOffset); err != nil {
		t.Fatalf("max offset rejected: %v", err)
	}
}

func TestMustGAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGAddr did not panic on invalid input")
		}
	}()
	MustGAddr(0, -1)
}

func TestNilGAddr(t *testing.T) {
	if !NilGAddr.IsNil() {
		t.Fatal("NilGAddr not nil")
	}
	if NilGAddr.String() != "gaddr(nil)" {
		t.Fatalf("nil String = %q", NilGAddr.String())
	}
	a := MustGAddr(2, 0x40)
	if a.IsNil() {
		t.Fatal("valid address reported nil")
	}
	if a.String() != "g2:0x40" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestGAddrAdd(t *testing.T) {
	a := MustGAddr(3, 100)
	b := a.Add(28)
	if b.Server() != 3 || b.Offset() != 128 {
		t.Fatalf("Add: %v", b)
	}
}

func TestSpanContains(t *testing.T) {
	s := Span{Addr: MustGAddr(1, 100), Size: 50}
	cases := []struct {
		addr GAddr
		size int64
		want bool
	}{
		{MustGAddr(1, 100), 50, true},
		{MustGAddr(1, 100), 51, false},
		{MustGAddr(1, 120), 30, true},
		{MustGAddr(1, 99), 1, false},
		{MustGAddr(2, 100), 10, false}, // different server
		{MustGAddr(1, 120), -1, false}, // negative size
	}
	for i, c := range cases {
		if got := s.Contains(c.addr, c.size); got != c.want {
			t.Errorf("case %d: Contains(%v,%d) = %v, want %v", i, c.addr, c.size, got, c.want)
		}
	}
	if end := s.End(); end.Offset() != 150 {
		t.Fatalf("End = %v", end)
	}
}

func TestSpanOverlaps(t *testing.T) {
	a := Span{Addr: MustGAddr(1, 100), Size: 50}
	cases := []struct {
		b    Span
		want bool
	}{
		{Span{MustGAddr(1, 150), 10}, false}, // adjacent
		{Span{MustGAddr(1, 149), 10}, true},
		{Span{MustGAddr(1, 50), 50}, false}, // adjacent below
		{Span{MustGAddr(1, 50), 51}, true},
		{Span{MustGAddr(2, 100), 50}, false}, // other server
		{a, true},
	}
	for i, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: Overlaps = %v, want %v", i, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
	}
}
