// Package region defines Gengar's global address space: 64-bit global
// addresses that name a byte in some server's NVM pool, and the directory
// entries clients use to translate them to RDMA-addressable locations.
package region

import (
	"errors"
	"fmt"
)

// GAddr is a global address in the distributed hybrid memory pool. The
// high 16 bits carry the home server ID and the low 48 bits the byte
// offset within that server's NVM pool, so a GAddr is location-routable
// with no metadata lookup — the property that lets gread/gwrite issue a
// one-sided verb directly.
//
// The zero GAddr is the nil address; servers never hand out offset 0
// (the pool's first block is reserved for metadata).
type GAddr uint64

// NilGAddr is the zero, invalid global address.
const NilGAddr GAddr = 0

// MaxOffset is the largest encodable per-server offset (48 bits).
const MaxOffset = int64(1)<<48 - 1

// ErrBadAddress reports a malformed or nil global address.
var ErrBadAddress = errors.New("region: bad global address")

// NewGAddr builds a global address from a home server ID and pool offset.
func NewGAddr(server uint16, offset int64) (GAddr, error) {
	if offset < 0 || offset > MaxOffset {
		return NilGAddr, fmt.Errorf("%w: offset %d out of range", ErrBadAddress, offset)
	}
	return GAddr(uint64(server)<<48 | uint64(offset)), nil
}

// MustGAddr is NewGAddr for statically-valid inputs; it panics on error
// and is intended for tests and constants.
func MustGAddr(server uint16, offset int64) GAddr {
	a, err := NewGAddr(server, offset)
	if err != nil {
		panic(err)
	}
	return a
}

// Server returns the home server ID encoded in the address.
func (a GAddr) Server() uint16 { return uint16(a >> 48) }

// Offset returns the byte offset within the home server's NVM pool.
func (a GAddr) Offset() int64 { return int64(a & GAddr(MaxOffset)) }

// IsNil reports whether a is the nil address.
func (a GAddr) IsNil() bool { return a == NilGAddr }

// Add returns the address delta bytes further into the same server's
// pool. It does not validate overflow past MaxOffset; use NewGAddr when
// the delta is untrusted.
func (a GAddr) Add(delta int64) GAddr {
	return GAddr(uint64(a.Server())<<48 | uint64(a.Offset()+delta))
}

// String formats the address as server:offset.
func (a GAddr) String() string {
	if a.IsNil() {
		return "gaddr(nil)"
	}
	return fmt.Sprintf("g%d:%#x", a.Server(), a.Offset())
}

// Span is a contiguous range of global memory on one server.
type Span struct {
	Addr GAddr
	Size int64
}

// End returns the address one past the span.
func (s Span) End() GAddr { return s.Addr.Add(s.Size) }

// Contains reports whether addr..addr+size lies inside the span.
func (s Span) Contains(addr GAddr, size int64) bool {
	if addr.Server() != s.Addr.Server() || size < 0 {
		return false
	}
	return addr.Offset() >= s.Addr.Offset() &&
		addr.Offset()+size <= s.Addr.Offset()+s.Size
}

// Overlaps reports whether the two spans share any byte.
func (s Span) Overlaps(o Span) bool {
	if s.Addr.Server() != o.Addr.Server() {
		return false
	}
	return s.Addr.Offset() < o.Addr.Offset()+o.Size &&
		o.Addr.Offset() < s.Addr.Offset()+s.Size
}
