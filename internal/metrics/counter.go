package metrics

import "sync/atomic"

// Counter is a monotonically-increasing concurrent counter. The zero
// value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (which should be non-negative).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Ratio returns num/den as a float, or 0 when den is zero — a common
// need for hit-rate reporting.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
