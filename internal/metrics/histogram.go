// Package metrics provides the lightweight instrumentation used across
// the Gengar simulator: concurrent log-scale latency histograms and
// counters. Latencies recorded here are simulated durations; the package
// itself is agnostic.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"
)

// subBuckets is the number of linear sub-buckets per power-of-two bucket;
// 16 gives a worst-case quantile error of ~6 %.
const subBuckets = 16

// maxBuckets covers durations up to ~2^40 ns (~18 minutes).
const maxBuckets = 41

// Histogram is a log-scale histogram of durations, in the spirit of
// HdrHistogram: power-of-two major buckets, each split into linear
// sub-buckets. The zero value is ready to use; it is safe for concurrent
// use.
type Histogram struct {
	mu     sync.Mutex
	counts [maxBuckets * subBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v) // exact for tiny values
	}
	exp := bits.Len64(uint64(v)) - 1
	// Linear position within [2^exp, 2^(exp+1)).
	sub := int((v - 1<<exp) >> (exp - 4)) // exp >= 4 here since v >= subBuckets
	idx := exp*subBuckets + sub
	if idx >= len((&Histogram{}).counts) {
		idx = len((&Histogram{}).counts) - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket index i — used
// to reconstruct quantiles.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i / subBuckets
	sub := i % subBuckets
	return 1<<exp + int64(sub)<<(exp-4)
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) { h.Observe(int64(d)) }

// Observe adds one raw observation. Most histograms hold durations in
// nanoseconds (use Record); unitless distributions — batch lengths,
// bytes per syscall — observe plain values and are exported unscaled.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketIndex(v)]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.min)
}

// Max returns the largest observation; see Min.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1),
// such as 0.5 for the median or 0.99 for P99.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if math.IsNaN(q) || q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 || h.n == 0 {
		return time.Duration(h.max)
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max)
}

// Quantiles returns one approximation per requested quantile, in input
// order, under a single lock acquisition — the registry's snapshot path
// asks for several at once.
func (h *Histogram) Quantiles(qs []float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}

// Reset discards all observations, returning the histogram to its zero
// state.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts = [maxBuckets * subBuckets]int64{}
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Merge folds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	other.mu.Lock()
	counts := other.counts
	n, sum, mn, mx := other.n, other.sum, other.min, other.max
	other.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.n == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.n += n
	h.sum += sum
}

// Summary is an immutable digest of a histogram for reporting.
type Summary struct {
	Count               int64
	Mean, P50, P95, P99 time.Duration
	Min, Max            time.Duration
}

// Summarize returns a report-ready digest, computed under one lock
// acquisition so the fields are mutually consistent.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Summary{
		Count: h.n,
		P50:   h.quantileLocked(0.5),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
		Min:   time.Duration(h.min),
		Max:   time.Duration(h.max),
	}
	if h.n > 0 {
		s.Mean = time.Duration(h.sum / h.n)
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v", s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
