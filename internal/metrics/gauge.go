package metrics

import "sync/atomic"

// Gauge is a concurrent instantaneous value — a level rather than a
// monotone count (queue depth, bytes in use, high-water marks). The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the current value by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is larger — the lock-free update
// high-water-mark tracking wants on a hot path.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}
