package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []time.Duration{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative observation not clamped to zero")
	}
}

func TestQuantileEdges(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i))
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("Quantile(1) = %v", got)
	}
	if got := h.Quantile(1.5); got != h.Max() {
		t.Fatalf("Quantile(1.5) = %v", got)
	}
}

func TestQuantileAccuracyProperty(t *testing.T) {
	// Property: quantile estimates are within ~7% relative error of the
	// exact quantile for log-uniform data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		vals := make([]int64, 1000)
		for i := range vals {
			v := int64(1) << uint(rng.Intn(30))
			v += rng.Int63n(v)
			vals[i] = v
			h.Record(time.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := float64(vals[int(q*float64(len(vals)))-1])
			got := float64(h.Quantile(q))
			if got < exact*0.90 || got > exact*1.10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(30)
	b.Record(40)
	a.Merge(&b)
	if a.Count() != 4 || a.Mean() != 25 || a.Min() != 10 || a.Max() != 40 {
		t.Fatalf("merge wrong: %+v", a.Summarize())
	}
	// Merging nil or self is a no-op.
	a.Merge(nil)
	a.Merge(&a)
	if a.Count() != 4 {
		t.Fatal("self/nil merge changed counts")
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Fatal("empty merge changed counts")
	}
	// Merge into empty adopts min.
	var c Histogram
	c.Merge(&a)
	if c.Min() != 10 || c.Count() != 4 {
		t.Fatalf("merge into empty: %+v", c.Summarize())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i))
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("reset histogram not all-zero: %+v", h.Summarize())
	}
	// A reset histogram is reusable.
	h.Record(42)
	if h.Count() != 1 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("record after reset: %+v", h.Summarize())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i))
	}
	qs := h.Quantiles([]float64{0.99, 0, 0.5, 1})
	if len(qs) != 4 {
		t.Fatalf("Quantiles returned %d values", len(qs))
	}
	if qs[1] != h.Min() || qs[3] != h.Max() {
		t.Fatalf("edge quantiles wrong: %v", qs)
	}
	if qs[0] != h.Quantile(0.99) || qs[2] != h.Quantile(0.5) {
		t.Fatalf("batch quantiles disagree with Quantile: %v", qs)
	}
	if qs[2] > qs[0] {
		t.Fatalf("p50 %v > p99 %v", qs[2], qs[0])
	}
	if got := h.Quantiles(nil); len(got) != 0 {
		t.Fatalf("Quantiles(nil) = %v", got)
	}
}

func TestSummaryPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i))
	}
	s := h.Summarize()
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.P95 < 900 || s.P95 > 1000 {
		t.Fatalf("P95 = %v, want ~950", s.P95)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("Load = %d", g.Load())
	}
	g.SetMax(5)
	if g.Load() != 7 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Fatalf("SetMax(9): Load = %d", g.Load())
	}
}

func TestGaugeConcurrentSetMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if g.Load() != 7999 {
		t.Fatalf("high water = %d, want 7999", g.Load())
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Record(time.Microsecond)
	s := h.Summarize()
	if s.Count != 1 || s.String() == "" {
		t.Fatalf("summary: %+v", s)
	}
}

func TestBucketLowInverse(t *testing.T) {
	// bucketLow(bucketIndex(v)) <= v for all v, and buckets are ordered.
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		return bucketLow(i) <= v && (i == 0 || bucketLow(i-1) < bucketLow(i)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Load = %d", c.Load())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Fatal("Ratio(1,2)")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio(_,0) should be 0")
	}
}
