package ycsb

import (
	"fmt"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind int

// YCSB operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Distribution selects the request key distribution.
type Distribution int

// Supported request distributions.
const (
	DistZipfian Distribution = iota + 1
	DistUniform
	DistLatest
)

// Workload is one YCSB core workload definition.
type Workload struct {
	Name string
	// Operation mix; proportions must sum to 1.
	ReadProp, UpdateProp, InsertProp, ScanProp, RMWProp float64

	Distribution Distribution
	Theta        float64 // zipfian skew (ignored for uniform)
	RecordSize   int
	MaxScanLen   int
	// UpdateBytes is the size of UPDATE/RMW writes; zero selects the
	// YCSB default of one 100 B field (clamped to the record size).
	UpdateBytes int
}

// Validate reports whether the mix sums to one.
func (w Workload) Validate() error {
	sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("ycsb: %s proportions sum to %f", w.Name, sum)
	}
	if w.RecordSize <= 0 {
		return fmt.Errorf("ycsb: %s record size %d", w.Name, w.RecordSize)
	}
	return nil
}

const defaultRecordSize = 1024 // YCSB: 10 fields x 100 B, rounded up

// A returns workload A: update heavy (50/50 read/update, zipfian).
func A() Workload {
	return Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5,
		Distribution: DistZipfian, Theta: 0.99, RecordSize: defaultRecordSize}
}

// B returns workload B: read mostly (95/5 read/update, zipfian).
func B() Workload {
	return Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05,
		Distribution: DistZipfian, Theta: 0.99, RecordSize: defaultRecordSize}
}

// C returns workload C: read only (zipfian).
func C() Workload {
	return Workload{Name: "C", ReadProp: 1,
		Distribution: DistZipfian, Theta: 0.99, RecordSize: defaultRecordSize}
}

// D returns workload D: read latest (95/5 read/insert, latest).
func D() Workload {
	return Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05,
		Distribution: DistLatest, Theta: 0.99, RecordSize: defaultRecordSize}
}

// E returns workload E: short ranges (95/5 scan/insert, zipfian).
func E() Workload {
	return Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05,
		Distribution: DistZipfian, Theta: 0.99, RecordSize: defaultRecordSize, MaxScanLen: 16}
}

// F returns workload F: read-modify-write (50/50 read/RMW, zipfian).
func F() Workload {
	return Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5,
		Distribution: DistZipfian, Theta: 0.99, RecordSize: defaultRecordSize}
}

// Core returns the six core workloads in order.
func Core() []Workload {
	return []Workload{A(), B(), C(), D(), E(), F()}
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     int64
	ScanLen int
}

// keyGen is the common surface of the distribution generators.
type keyGen interface {
	Next() int64
	Grow(items int64)
}

// zipfNoGrow adapts ScrambledZipfian (fixed key space) to keyGen:
// inserts extend the table, but the scrambled distribution keeps drawing
// from the initial space, as YCSB does for zipfian workloads.
type zipfNoGrow struct{ s *ScrambledZipfian }

func (z zipfNoGrow) Next() int64 { return z.s.Next() }
func (zipfNoGrow) Grow(int64)    {}

// Generator produces a YCSB operation stream for one client. Not safe
// for concurrent use.
type Generator struct {
	w     Workload
	rng   *rand.Rand
	keys  keyGen
	items int64
}

// NewGenerator returns a generator over an initial key space of items
// records, seeded deterministically.
func NewGenerator(w Workload, items int64, seed int64) (*Generator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if items <= 0 {
		return nil, fmt.Errorf("ycsb: item count %d", items)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{w: w, rng: rng, items: items}
	switch w.Distribution {
	case DistZipfian:
		g.keys = zipfNoGrow{NewScrambledZipfian(rng, items, w.Theta)}
	case DistLatest:
		g.keys = NewLatest(rng, items, w.Theta)
	case DistUniform:
		g.keys = NewUniform(rng, items)
	default:
		return nil, fmt.Errorf("ycsb: unknown distribution %d", w.Distribution)
	}
	return g, nil
}

// Items returns the current key-space size as seen by this generator.
func (g *Generator) Items() int64 { return g.items }

// RecordInsert tells the generator the table grew (its own insert or a
// peer's, if the harness broadcasts them).
func (g *Generator) RecordInsert(newCount int64) {
	if newCount > g.items {
		g.items = newCount
		g.keys.Grow(newCount)
	}
}

// Next draws the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	w := g.w
	switch {
	case p < w.ReadProp:
		return Op{Kind: OpRead, Key: g.nextKey()}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Kind: OpUpdate, Key: g.nextKey()}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp:
		return Op{Kind: OpInsert, Key: g.items}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		n := 1
		if w.MaxScanLen > 1 {
			n = 1 + g.rng.Intn(w.MaxScanLen)
		}
		return Op{Kind: OpScan, Key: g.nextKey(), ScanLen: n}
	default:
		return Op{Kind: OpReadModifyWrite, Key: g.nextKey()}
	}
}

func (g *Generator) nextKey() int64 {
	k := g.keys.Next()
	if k >= g.items {
		k = g.items - 1
	}
	return k
}
