package ycsb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/server"
)

func TestWorkloadPresetsValid(t *testing.T) {
	for _, w := range Core() {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s: %v", w.Name, err)
		}
	}
	if len(Core()) != 6 {
		t.Fatal("expected six core workloads")
	}
}

func TestWorkloadValidateCatchesBadMix(t *testing.T) {
	w := A()
	w.ReadProp = 0.9 // now sums to 1.4
	if err := w.Validate(); err == nil {
		t.Fatal("bad mix accepted")
	}
	w = A()
	w.RecordSize = 0
	if err := w.Validate(); err == nil {
		t.Fatal("zero record size accepted")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpRead: "READ", OpUpdate: "UPDATE", OpInsert: "INSERT",
		OpScan: "SCAN", OpReadModifyWrite: "RMW", OpKind(99): "OpKind(99)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestZipfianRangeAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipfian(rng, 1000, 0.99)
	counts := make(map[int64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must be by far the most popular (~7% at theta=.99, n=1000).
	if counts[0] < draws/50 {
		t.Fatalf("key 0 drawn only %d times of %d", counts[0], draws)
	}
	// Top 10% of keys should capture the majority of draws.
	var top int
	for k, c := range counts {
		if k < 100 {
			top += c
		}
	}
	if float64(top) < 0.55*draws {
		t.Fatalf("top decile only %d/%d draws — not skewed", top, draws)
	}
}

func TestZipfianGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipfian(rng, 100, 0.99)
	z.Grow(200)
	if z.Items() != 200 {
		t.Fatalf("Items = %d", z.Items())
	}
	z.Grow(50) // shrink is a no-op
	if z.Items() != 200 {
		t.Fatal("Grow shrank the space")
	}
	// Incremental zeta must equal from-scratch zeta.
	fresh := NewZipfian(rand.New(rand.NewSource(2)), 200, 0.99)
	if math.Abs(z.zetan-fresh.zetan) > 1e-9 {
		t.Fatalf("incremental zeta %f != fresh %f", z.zetan, fresh.zetan)
	}
	for i := 0; i < 1000; i++ {
		if k := z.Next(); k < 0 || k >= 200 {
			t.Fatalf("key %d out of grown range", k)
		}
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewScrambledZipfian(rng, 1000, 0.99)
	counts := make(map[int64]int)
	for i := 0; i < 20000; i++ {
		k := s.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest key should NOT be key 0 deterministically adjacent to
	// the next hottest; just assert strong skew exists somewhere.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 400 {
		t.Fatalf("max key count %d — scrambling destroyed skew", maxC)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLatest(rng, 1000, 0.99)
	var recent int
	const draws = 10000
	for i := 0; i < draws; i++ {
		k := l.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		if k >= 900 {
			recent++
		}
	}
	if float64(recent) < 0.5*draws {
		t.Fatalf("only %d/%d draws in newest decile", recent, draws)
	}
	l.Grow(2000)
	top := false
	for i := 0; i < 1000; i++ {
		if k := l.Next(); k >= 1000 {
			top = true
			if k >= 2000 {
				t.Fatalf("key %d beyond grown space", k)
			}
		}
	}
	if !top {
		t.Fatal("latest never drew from grown region")
	}
}

func TestUniformCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := NewUniform(rng, 100)
	seen := make(map[int64]bool)
	for i := 0; i < 5000; i++ {
		k := u.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
	u.Grow(200)
	if u.items != 200 {
		t.Fatal("Grow failed")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g, err := NewGenerator(A(), 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	var reads, updates int
	const draws = 10000
	for i := 0; i < draws; i++ {
		switch g.Next().Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatal("workload A generated a non-read/update op")
		}
	}
	if reads < 4500 || reads > 5500 {
		t.Fatalf("A: reads = %d of %d", reads, draws)
	}
	if reads+updates != draws {
		t.Fatal("mix accounting")
	}
}

func TestGeneratorScanLens(t *testing.T) {
	g, err := NewGenerator(E(), 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sawScan := false
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			sawScan = true
			if op.ScanLen < 1 || op.ScanLen > E().MaxScanLen {
				t.Fatalf("scan len %d", op.ScanLen)
			}
		}
	}
	if !sawScan {
		t.Fatal("workload E generated no scans")
	}
}

func TestGeneratorInsertGrowsKeySpace(t *testing.T) {
	g, err := NewGenerator(D(), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	g.RecordInsert(101)
	if g.Items() != 101 {
		t.Fatalf("Items = %d", g.Items())
	}
	// Keys stay in range after growth.
	for i := 0; i < 500; i++ {
		op := g.Next()
		if op.Kind != OpInsert && op.Key >= g.Items() {
			t.Fatalf("key %d >= items %d", op.Key, g.Items())
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(A(), 0, 1); err == nil {
		t.Fatal("zero items accepted")
	}
	bad := A()
	bad.Distribution = Distribution(99)
	if _, err := NewGenerator(bad, 10, 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestGeneratorDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		g1, err1 := NewGenerator(B(), 500, seed)
		g2, err2 := NewGenerator(B(), 500, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			if g1.Next() != g2.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- integration with the pool ---

func testCluster(t *testing.T) *server.Cluster {
	t.Helper()
	cfg := config.Default()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 22
	cfg.DRAMBufferBytes = 1 << 18
	cfg.RingBytes = 1 << 24
	cfg.Hotness.DigestEvery = 64
	cfg.Hotness.PlanEvery = 100 * time.Microsecond
	c, err := server.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestLoadAndTableAccessors(t *testing.T) {
	c := testCluster(t)
	cl, err := core.Connect(c, "loader")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	table, err := Load(cl, 50, 256)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 50 || table.RecordSize() != 256 {
		t.Fatalf("table: %d x %d", table.Len(), table.RecordSize())
	}
	if _, ok := table.Addr(49); !ok {
		t.Fatal("last record missing")
	}
	if _, ok := table.Addr(50); ok {
		t.Fatal("phantom record")
	}
	if _, ok := table.Addr(-1); ok {
		t.Fatal("negative key accepted")
	}
	if _, err := Load(cl, 0, 256); err == nil {
		t.Fatal("zero records accepted")
	}
}

func TestRunAllWorkloads(t *testing.T) {
	c := testCluster(t)
	loader, err := core.Connect(c, "loader")
	if err != nil {
		t.Fatal(err)
	}
	defer loader.Close()
	for _, w := range Core() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			w.RecordSize = 256
			table, err := Load(loader, 100, w.RecordSize)
			if err != nil {
				t.Fatal(err)
			}
			var clients []*core.Client
			for i := 0; i < 2; i++ {
				cl, err := core.Connect(c, "w"+w.Name+string(rune('a'+i)))
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				clients = append(clients, cl)
			}
			res, err := Run(clients, table, w, 200, 99)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 400 {
				t.Fatalf("ops = %d, want 400", res.Ops)
			}
			if res.Throughput <= 0 || res.SimDuration <= 0 {
				t.Fatalf("throughput %f over %v", res.Throughput, res.SimDuration)
			}
			if len(res.PerKind) == 0 {
				t.Fatal("no per-kind latency recorded")
			}
			for k, s := range res.PerKind {
				if s.Mean <= 0 {
					t.Fatalf("%v mean latency %v", k, s.Mean)
				}
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, &Table{}, A(), 10, 1); err == nil {
		t.Fatal("no clients accepted")
	}
}
