// Package ycsb implements the YCSB core workloads (A–F) against the
// Gengar pool: key-distribution generators (zipfian, scrambled zipfian,
// latest, uniform), the standard operation mixes, and a closed-loop
// multi-client runner that reports simulated throughput and latency.
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Zipfian draws keys in [0, Items) with the YCSB zipfian distribution
// (Gray et al.): key 0 most popular. It supports growing the item count
// (needed by the latest distribution) with incremental zeta updates.
// Not safe for concurrent use; give each actor its own generator.
type Zipfian struct {
	rng   *rand.Rand
	items int64
	theta float64

	alpha, zetan, eta float64
	zeta2             float64
}

// NewZipfian returns a generator over [0, items) with skew theta
// (0 < theta < 1; YCSB default 0.99).
func NewZipfian(rng *rand.Rand, items int64, theta float64) *Zipfian {
	z := &Zipfian{rng: rng, items: items, theta: theta}
	z.zeta2 = zetaStatic(0, 2, theta, 0)
	z.zetan = zetaStatic(0, items, theta, 0)
	z.recompute()
	return z
}

func zetaStatic(st, n int64, theta, initial float64) float64 {
	sum := initial
	for i := st; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

func (z *Zipfian) recompute() {
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// Grow extends the key space to items, updating zeta incrementally.
func (z *Zipfian) Grow(items int64) {
	if items <= z.items {
		return
	}
	z.zetan = zetaStatic(z.items, items, z.theta, z.zetan)
	z.items = items
	z.recompute()
}

// Items returns the current key-space size.
func (z *Zipfian) Items() int64 { return z.items }

// Next draws the next key.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads zipfian popularity across the key space by
// hashing, as YCSB does, so hot keys are not physically adjacent.
type ScrambledZipfian struct {
	z     *Zipfian
	items int64
}

// NewScrambledZipfian returns a scrambled generator over [0, items).
func NewScrambledZipfian(rng *rand.Rand, items int64, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(rng, items, theta), items: items}
}

// Next draws the next key.
func (s *ScrambledZipfian) Next() int64 {
	h := fnv.New64a()
	v := s.z.Next()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return int64(h.Sum64() % uint64(s.items)) //nolint:gosec // distribution, not crypto
}

// Latest favors recently-inserted keys: key N-1 is the most popular, as
// in YCSB workload D.
type Latest struct {
	z *Zipfian
}

// NewLatest returns a latest-distribution generator over [0, items).
func NewLatest(rng *rand.Rand, items int64, theta float64) *Latest {
	return &Latest{z: NewZipfian(rng, items, theta)}
}

// Grow extends the key space after an insert.
func (l *Latest) Grow(items int64) { l.z.Grow(items) }

// Next draws the next key.
func (l *Latest) Next() int64 {
	k := l.z.Items() - 1 - l.z.Next()
	if k < 0 {
		k = 0
	}
	return k
}

// Uniform draws keys uniformly from [0, items).
type Uniform struct {
	rng   *rand.Rand
	items int64
}

// NewUniform returns a uniform generator over [0, items).
func NewUniform(rng *rand.Rand, items int64) *Uniform {
	return &Uniform{rng: rng, items: items}
}

// Grow extends the key space.
func (u *Uniform) Grow(items int64) {
	if items > u.items {
		u.items = items
	}
}

// Next draws the next key.
func (u *Uniform) Next() int64 { return u.rng.Int63n(u.items) }
