package ycsb

import (
	"fmt"
	"sync"
	"time"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// fieldBytes is the size of one YCSB field; updates and RMWs touch one
// field, reads and scans fetch whole records.
const fieldBytes = 100

// Table is a keyed set of records stored in the pool: key k lives at
// addrs[k]. Inserts append. Safe for concurrent use.
type Table struct {
	mu         sync.RWMutex
	addrs      []region.GAddr
	recordSize int
}

// loadBurst is how many records the loader initializes per WriteMulti
// call: large enough that each home server sees a long doorbell-batched
// chain, small enough to stay within one staging-ring worth of slots.
const loadBurst = 32

// Load allocates and initializes a table of records through the given
// client, spreading records across home servers round-robin. Record
// images go out in batched bursts — one doorbell-batched chain per home
// server per burst — so the load phase costs a fraction of the
// one-write-per-record baseline.
func Load(c *core.Client, records int, recordSize int) (*Table, error) {
	if records <= 0 || recordSize <= 0 {
		return nil, fmt.Errorf("ycsb: load %d x %d", records, recordSize)
	}
	t := &Table{addrs: make([]region.GAddr, 0, records), recordSize: recordSize}
	addrs := make([]region.GAddr, 0, loadBurst)
	rows := make([][]byte, 0, loadBurst)
	for len(rows) < loadBurst {
		rows = append(rows, make([]byte, recordSize))
	}
	for i := 0; i < records; i += loadBurst {
		addrs = addrs[:0]
		burst := minInt(loadBurst, records-i)
		for b := 0; b < burst; b++ {
			addr, err := c.Malloc(int64(recordSize))
			if err != nil {
				return nil, fmt.Errorf("ycsb: load record %d: %w", i+b, err)
			}
			for j := range rows[b] {
				rows[b][j] = byte(i + b + j)
			}
			addrs = append(addrs, addr)
		}
		if err := c.WriteMulti(addrs, rows[:burst]); err != nil {
			return nil, fmt.Errorf("ycsb: init records %d..%d: %w", i, i+burst-1, err)
		}
		t.addrs = append(t.addrs, addrs...)
	}
	// Publish: workers are different clients, so the loader's proxied
	// writes must reach NVM before anyone else reads the table.
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the current record count.
func (t *Table) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.addrs))
}

// RecordSize returns the per-record size in bytes.
func (t *Table) RecordSize() int { return t.recordSize }

// Addr returns the address of record key.
func (t *Table) Addr(key int64) (region.GAddr, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if key < 0 || key >= int64(len(t.addrs)) {
		return region.NilGAddr, false
	}
	return t.addrs[key], true
}

// Append adds a freshly inserted record and returns the new count.
func (t *Table) Append(addr region.GAddr) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = append(t.addrs, addr)
	return int64(len(t.addrs))
}

// Result is one workload run's outcome. All times are simulated.
type Result struct {
	Workload    string
	Clients     int
	Ops         int64
	SimDuration time.Duration
	Throughput  float64 // ops per simulated second
	PerKind     map[OpKind]metrics.Summary
	HitRate     float64 // cache hit rate across clients, this run only
}

// pacingWindow bounds the virtual-clock skew among concurrent clients
// (see simnet.Gate) to a few operation latencies.
const pacingWindow = 3 * time.Microsecond

// Run drives opsPerClient operations from each client through the table
// using workload w, one goroutine per client, and aggregates simulated
// latency and throughput. Each client gets a deterministic generator
// seeded from seed and its index. Clients are pace-synchronized so their
// virtual timelines interleave as they would on real hardware.
func Run(clients []*core.Client, table *Table, w Workload, opsPerClient int, seed int64) (Result, error) {
	if len(clients) == 0 || opsPerClient <= 0 {
		return Result{}, fmt.Errorf("ycsb: run with %d clients x %d ops", len(clients), opsPerClient)
	}
	// Start every client from the same virtual instant — the fabric
	// frontier — so the gate doesn't immediately block whoever connected
	// last, and setup traffic's resource watermarks don't surface as a
	// phantom first-op stall.
	var start simnet.Time
	for _, c := range clients {
		c.AdvanceToFrontier()
		if now := c.Now(); now > start {
			start = now
		}
	}
	for _, c := range clients {
		c.AdvanceTo(start)
	}
	// Join every client before any goroutine starts: otherwise an
	// early-scheduled client bursts through its whole loop while alone in
	// the gate, defeating the pacing.
	gate := simnet.NewGate(pacingWindow)
	paces := make([]*simnet.GateHandle, len(clients))
	for i := range clients {
		paces[i] = gate.Join(start)
	}
	type clientOut struct {
		hists      map[OpKind]*metrics.Histogram
		start, end simnet.Time
		hits, miss int64
		err        error
	}
	outs := make([]clientOut, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *core.Client) {
			defer wg.Done()
			out := &outs[i]
			out.hists = make(map[OpKind]*metrics.Histogram)
			gen, err := NewGenerator(w, table.Len(), seed+int64(i))
			if err != nil {
				out.err = err
				return
			}
			st0 := c.Stats()
			out.start = c.Now()
			pace := paces[i]
			defer pace.Leave()
			buf := make([]byte, table.recordSize)
			updateBytes := w.UpdateBytes
			if updateBytes <= 0 {
				updateBytes = fieldBytes
			}
			field := make([]byte, minInt(updateBytes, table.recordSize))
			for n := 0; n < opsPerClient; n++ {
				op := gen.Next()
				before := c.Now()
				pace.Advance(before)
				if err := execute(c, table, gen, op, buf, field); err != nil {
					out.err = err
					return
				}
				h := out.hists[op.Kind]
				if h == nil {
					h = new(metrics.Histogram)
					out.hists[op.Kind] = h
				}
				h.Record(c.Now().Sub(before))
			}
			out.end = c.Now()
			st1 := c.Stats()
			out.hits = st1.CacheHits - st0.CacheHits
			out.miss = st1.CacheMiss - st0.CacheMiss
		}(i, c)
	}
	wg.Wait()

	res := Result{
		Workload: w.Name,
		Clients:  len(clients),
		PerKind:  make(map[OpKind]metrics.Summary),
	}
	merged := make(map[OpKind]*metrics.Histogram)
	var minStart, maxEnd simnet.Time
	var hits, miss int64
	first := true
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return Result{}, o.err
		}
		for k, h := range o.hists {
			m := merged[k]
			if m == nil {
				m = new(metrics.Histogram)
				merged[k] = m
			}
			m.Merge(h)
			res.Ops += h.Count()
		}
		if first || o.start < minStart {
			minStart = o.start
		}
		if o.end > maxEnd {
			maxEnd = o.end
		}
		hits += o.hits
		miss += o.miss
		first = false
	}
	for k, h := range merged {
		res.PerKind[k] = h.Summarize()
	}
	res.SimDuration = maxEnd.Sub(minStart)
	if res.SimDuration > 0 {
		res.Throughput = float64(res.Ops) / res.SimDuration.Seconds()
	}
	res.HitRate = metrics.Ratio(hits, hits+miss)
	return res, nil
}

func execute(c *core.Client, t *Table, gen *Generator, op Op, buf, field []byte) error {
	switch op.Kind {
	case OpRead:
		addr, ok := t.Addr(op.Key)
		if !ok {
			return nil // racing insert; skip
		}
		return c.Read(addr, buf)
	case OpUpdate:
		addr, ok := t.Addr(op.Key)
		if !ok {
			return nil
		}
		return c.Write(addr, field)
	case OpInsert:
		addr, err := c.Malloc(int64(t.recordSize))
		if err != nil {
			return err
		}
		if err := c.Write(addr, buf); err != nil {
			return err
		}
		gen.RecordInsert(t.Append(addr))
		return nil
	case OpScan:
		// Scans use the vectored read path: all records of the range are
		// posted as one doorbell-batched chain per server.
		addrs := make([]region.GAddr, 0, op.ScanLen)
		bufs := make([][]byte, 0, op.ScanLen)
		for i := int64(0); i < int64(op.ScanLen); i++ {
			addr, ok := t.Addr(op.Key + i)
			if !ok {
				break
			}
			addrs = append(addrs, addr)
			bufs = append(bufs, make([]byte, t.recordSize))
		}
		if len(addrs) == 0 {
			return nil
		}
		return c.ReadMulti(addrs, bufs)
	case OpReadModifyWrite:
		addr, ok := t.Addr(op.Key)
		if !ok {
			return nil
		}
		if err := c.Read(addr, buf); err != nil {
			return err
		}
		return c.Write(addr, field)
	default:
		return fmt.Errorf("ycsb: unknown op kind %d", op.Kind)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
