package engine

import (
	"encoding/binary"
	"fmt"
	"sync"

	"gengar/internal/alloc"
	"gengar/internal/cache"
	"gengar/internal/simnet"
)

// Hosted copies: the holder side of the distributed DRAM cache. A home
// daemon under arena pressure spills a hot object's copy into a peer's
// arena; the peer records it here — offset, the home-minted generation,
// and the data size — and serves generation-checked installs, writes,
// reads, and releases against it over the peer wire ops. The table is
// the holder's authority on which slots belong to remote homes, so a
// stale or replayed peer op (wrong generation, unknown slot) fails
// cleanly instead of touching a recycled buffer.

// hostedCopy is one remote home's copy living in this engine's arena.
type hostedCopy struct {
	gen  uint64 // home-minted cluster-unique generation
	size int64  // data bytes (header excluded)
}

// hostedTable tracks the hosted copies by arena offset.
type hostedTable struct {
	mu sync.Mutex
	//gengar:guardedby mu
	m map[int64]hostedCopy
	//gengar:guardedby mu
	bytes int64 // arena footprint (header + data, block-rounded)
}

// HostCopy reserves arena space for a peer's copy of size data bytes
// under the given home-minted generation and returns the slot offset.
// The generation must be nonzero — zero is the released-slot sentinel.
func (e *Engine) HostCopy(gen uint64, size int64) (int64, error) {
	if gen == 0 {
		return 0, fmt.Errorf("engine %s: host copy with zero generation", e.name)
	}
	if size <= 0 {
		return 0, fmt.Errorf("engine %s: host copy of %d bytes", e.name, size)
	}
	off, err := e.bufp.Place(size + cache.CopyHeaderBytes)
	if err != nil {
		return 0, err
	}
	e.hosted.mu.Lock()
	if e.hosted.m == nil {
		e.hosted.m = make(map[int64]hostedCopy)
	}
	e.hosted.m[off] = hostedCopy{gen: gen, size: size}
	e.hosted.bytes += alloc.BlockSize(size + cache.CopyHeaderBytes)
	e.hosted.mu.Unlock()
	return off, nil
}

// hostedLoc validates a peer op against the table — the slot must be
// hosted and carry the op's generation — and returns the local location
// to run the copy I/O against. Bounds are the caller's to check against
// the returned size.
func (e *Engine) hostedLoc(off int64, gen uint64) (cache.Location, error) {
	e.hosted.mu.Lock()
	hc, ok := e.hosted.m[off]
	e.hosted.mu.Unlock()
	if !ok || hc.gen != gen {
		return cache.Location{}, fmt.Errorf("%w: hosted slot %d", ErrStaleCopy, off)
	}
	return cache.Location{Node: e.name, Off: off, Size: hc.size, Gen: gen}, nil
}

// HostedInstall lands the full data image of a hosted copy: the holder
// writes the generation header itself (from the validated table entry)
// plus the home's data bytes, under the slot's seqlock.
func (e *Engine) HostedInstall(at simnet.Time, off int64, gen uint64, data []byte) error {
	loc, err := e.hostedLoc(off, gen)
	if err != nil {
		return err
	}
	if int64(len(data)) != loc.Size {
		return fmt.Errorf("engine %s: hosted install of %d bytes into %d-byte slot", e.name, len(data), loc.Size)
	}
	payload := make([]byte, cache.CopyHeaderBytes+len(data))
	binary.BigEndian.PutUint64(payload, gen)
	copy(payload[cache.CopyHeaderBytes:], data)
	_, err = e.localIO.InstallCopy(at, loc, payload)
	return err
}

// HostedWrite applies a home's write-through to a hosted copy's data
// area under the slot's seqlock.
func (e *Engine) HostedWrite(at simnet.Time, off int64, gen uint64, delta int64, data []byte) error {
	loc, err := e.hostedLoc(off, gen)
	if err != nil {
		return err
	}
	if delta < 0 || delta+int64(len(data)) > loc.Size {
		return fmt.Errorf("engine %s: hosted write [%d,%d) out of %d-byte copy", e.name, delta, delta+int64(len(data)), loc.Size)
	}
	_, err = e.localIO.WriteCopy(at, loc, delta, data)
	return err
}

// HostedRead serves a home's proxied cache hit from a hosted copy,
// generation-checked at this holder — the authoritative check the
// paper's protocol puts where the bytes live.
func (e *Engine) HostedRead(at simnet.Time, off int64, gen uint64, delta int64, buf []byte) error {
	loc, err := e.hostedLoc(off, gen)
	if err != nil {
		return err
	}
	_, err = e.localIO.ReadCopy(at, loc, delta, buf)
	if err == nil {
		e.hostedReads.Inc()
	}
	return err
}

// HostedRelease returns a hosted copy's arena space. Releasing zeroes
// the slot's generation header, so any location still naming the old
// generation misses cleanly even after the slot is reused.
func (e *Engine) HostedRelease(off int64, gen uint64) error {
	e.hosted.mu.Lock()
	hc, ok := e.hosted.m[off]
	if ok && hc.gen == gen {
		delete(e.hosted.m, off)
		e.hosted.bytes -= alloc.BlockSize(hc.size + cache.CopyHeaderBytes)
	}
	e.hosted.mu.Unlock()
	if !ok || hc.gen != gen {
		return fmt.Errorf("%w: hosted release of slot %d", ErrStaleCopy, off)
	}
	e.localIO.Release(cache.Location{Node: e.name, Off: off, Size: hc.size, Gen: gen})
	return nil
}

// HostedStats reports the hosted-copy count and arena footprint — the
// peer-occupancy half of the distributed-cache telemetry split.
func (e *Engine) HostedStats() (copies int, bytes int64) {
	e.hosted.mu.Lock()
	defer e.hosted.mu.Unlock()
	return len(e.hosted.m), e.hosted.bytes
}
