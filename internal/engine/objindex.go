package engine

import (
	"sort"
	"sync"

	"gengar/internal/region"
)

// objIndex tracks live objects on one home server: base address and
// rounded size, ordered for containment queries. The engine uses it to
// resolve raw verb target addresses (as reported in hotness digests, or
// seen by the proxy flusher) to the containing object, and to size
// promotion candidates.
type objIndex struct {
	mu    sync.RWMutex
	sizes map[region.GAddr]int64
	bases []region.GAddr // sorted
}

func newObjIndex() *objIndex {
	return &objIndex{sizes: make(map[region.GAddr]int64)}
}

// insert registers a new object. Bases are unique (allocator-provided).
func (x *objIndex) insert(base region.GAddr, size int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.sizes[base]; dup {
		return
	}
	x.sizes[base] = size
	i := sort.Search(len(x.bases), func(i int) bool { return x.bases[i] >= base })
	x.bases = append(x.bases, 0)
	copy(x.bases[i+1:], x.bases[i:])
	x.bases[i] = base
}

// remove drops an object; it reports whether the object existed.
func (x *objIndex) remove(base region.GAddr) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.sizes[base]; !ok {
		return false
	}
	delete(x.sizes, base)
	i := sort.Search(len(x.bases), func(i int) bool { return x.bases[i] >= base })
	x.bases = append(x.bases[:i], x.bases[i+1:]...)
	return true
}

// sizeOf returns the object's rounded size, or 0 if unknown.
func (x *objIndex) sizeOf(base region.GAddr) int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.sizes[base]
}

// findContaining resolves a byte range to its containing object.
func (x *objIndex) findContaining(addr region.GAddr, size int64) (base region.GAddr, objSize int64, ok bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if len(x.bases) == 0 {
		return region.NilGAddr, 0, false
	}
	i := sort.Search(len(x.bases), func(i int) bool { return x.bases[i] > addr }) - 1
	if i < 0 {
		return region.NilGAddr, 0, false
	}
	b := x.bases[i]
	sz := x.sizes[b]
	if !(region.Span{Addr: b, Size: sz}).Contains(addr, size) {
		return region.NilGAddr, 0, false
	}
	return b, sz, true
}

// count returns the number of live objects.
func (x *objIndex) count() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.sizes)
}
