package engine

import (
	"sort"
	"sync"
	"sync/atomic"

	"gengar/internal/region"
)

// objIndex tracks live objects on one home server: base address and
// rounded size, ordered for containment queries. The engine uses it to
// resolve raw verb target addresses (as reported in hotness digests, or
// seen by the proxy flusher) to the containing object, and to size
// promotion candidates.
//
// Lookups run on every mediated read, so readers follow an atomically-
// swapped immutable snapshot and take no locks; insert/remove (malloc/
// free — rare next to reads) clone under a writer mutex before
// publishing.
type objIndex struct {
	mu sync.Mutex // serializes writers
	//gengar:guardedby mu
	p atomic.Pointer[objState]
}

// objState is one immutable index version; neither field is mutated
// after publication.
type objState struct {
	sizes map[region.GAddr]int64
	bases []region.GAddr // sorted
}

func newObjIndex() *objIndex {
	x := &objIndex{}
	x.p.Store(&objState{sizes: make(map[region.GAddr]int64)})
	return x
}

// clone returns a mutable copy of the current state; the caller holds
// x.mu and publishes the copy when done.
func (s *objState) clone(extra int) *objState {
	next := &objState{
		sizes: make(map[region.GAddr]int64, len(s.sizes)+extra),
		bases: make([]region.GAddr, len(s.bases), len(s.bases)+extra),
	}
	for a, sz := range s.sizes {
		next.sizes[a] = sz
	}
	copy(next.bases, s.bases)
	return next
}

// insert registers a new object. Bases are unique (allocator-provided).
func (x *objIndex) insert(base region.GAddr, size int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	old := x.p.Load()
	if _, dup := old.sizes[base]; dup {
		return
	}
	next := old.clone(1)
	next.sizes[base] = size
	i := sort.Search(len(next.bases), func(i int) bool { return next.bases[i] >= base })
	next.bases = append(next.bases, 0)
	copy(next.bases[i+1:], next.bases[i:])
	next.bases[i] = base
	x.p.Store(next)
}

// remove drops an object; it reports whether the object existed.
func (x *objIndex) remove(base region.GAddr) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	old := x.p.Load()
	if _, ok := old.sizes[base]; !ok {
		return false
	}
	next := old.clone(0)
	delete(next.sizes, base)
	i := sort.Search(len(next.bases), func(i int) bool { return next.bases[i] >= base })
	next.bases = append(next.bases[:i], next.bases[i+1:]...)
	x.p.Store(next)
	return true
}

// sizeOf returns the object's rounded size, or 0 if unknown.
func (x *objIndex) sizeOf(base region.GAddr) int64 {
	return x.p.Load().sizes[base]
}

// findContaining resolves a byte range to its containing object. It
// takes no locks.
//
//gengar:hotpath
func (x *objIndex) findContaining(addr region.GAddr, size int64) (base region.GAddr, objSize int64, ok bool) {
	s := x.p.Load()
	if len(s.bases) == 0 {
		return region.NilGAddr, 0, false
	}
	i := sort.Search(len(s.bases), func(i int) bool { return s.bases[i] > addr }) - 1
	if i < 0 {
		return region.NilGAddr, 0, false
	}
	b := s.bases[i]
	sz := s.sizes[b]
	if !(region.Span{Addr: b, Size: sz}).Contains(addr, size) {
		return region.NilGAddr, 0, false
	}
	return b, sz, true
}

// count returns the number of live objects.
func (x *objIndex) count() int {
	return len(x.p.Load().sizes)
}
