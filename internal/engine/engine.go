// Package engine is the transport-agnostic core of a Gengar memory
// server: one allocation/caching/staging/locking state machine that
// transport mounts expose to clients. The engine owns
//
//   - an NVM pool device with a buddy allocator (gmalloc/gfree targets),
//   - a DRAM buffer arena holding promoted copies of hot objects,
//   - DRAM staging rings and a proxy flusher for the redesigned write
//     path,
//   - a one-sided lock table (lock + version words) and a lease table
//     for server-mediated locking,
//   - the hotness sketch, promotion policy and remap table for its home
//     objects.
//
// Two mounts exist: internal/server binds the engine to the simulated
// RDMA fabric and virtual time (every operation carries the caller's
// simnet instant), and internal/tcpnet binds it to real TCP and wall
// time (a Clock supplies instants). Placement of promoted copies is the
// one policy that differs per deployment, so it is injected as a Placer:
// the simulated mount places cluster-wide through the server registry,
// the TCP mount places into the engine's own arena.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"gengar/internal/alloc"
	"gengar/internal/cache"
	"gengar/internal/config"
	"gengar/internal/hmem"
	"gengar/internal/hotness"
	"gengar/internal/lock"
	"gengar/internal/metrics"
	"gengar/internal/proxy"
	"gengar/internal/region"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
)

// Errors returned by engine operations.
var (
	// ErrUnknownObject reports an operation on an address that is not a
	// live object base.
	ErrUnknownObject = errors.New("engine: unknown object")
	// ErrRingSpaceExhausted reports that every staging ring is leased.
	ErrRingSpaceExhausted = errors.New("engine: staging ring space exhausted")
	// ErrNotHome reports an operation addressed to the wrong home server.
	ErrNotHome = errors.New("engine: address not homed here")
)

// Config shapes one engine.
type Config struct {
	// ID is the server's pool ID (the high bits of addresses it homes).
	ID uint16
	// Name prefixes device names for diagnostics (e.g. "server-1").
	Name string
	// Cluster supplies capacities, media profiles, hotness and proxy
	// parameters, and feature switches.
	Cluster config.Cluster
	// Clock supplies instants for mounts without per-request timestamps
	// (the TCP mount). May be nil when every call provides its own `at`,
	// as the simulated mount does; Now then reports zero.
	Clock Clock
}

// Engine is one Gengar memory server's mechanism state, independent of
// the transport serving it.
type Engine struct {
	id   uint16
	name string
	cfg  config.Cluster
	clk  Clock

	cpu      *simnet.Resource
	nvm      *hmem.Device
	cacheDev *hmem.Device
	ringDev  *hmem.Device
	lockDev  *hmem.Device

	pool    *alloc.ShardedPool
	objIdx  *objIndex
	remap   *cache.RemapTable
	bufp    *cache.BufferPool
	policy  hotness.Policy
	flusher *proxy.Engine
	lockTbl *lock.Table
	leases  *lock.LeaseTable

	// placer is the deployment's promotion-placement strategy. It is set
	// once by the mount before any traffic (SetPlacer); until then the
	// engine serves data but never promotes.
	placer Placer

	// localIO is the copy data plane over this engine's own arena,
	// shared by the local placer and the hosted-copy (peer spill) table.
	localIO localCopyIO
	// hosted tracks copies that remote homes spilled into this arena.
	hosted hostedTable

	mu             sync.Mutex // guards sketch, plan state, ring leases
	sketch         *hotness.SpaceSaving
	lastPlan       simnet.Time
	lastPlanWeight uint64
	newWeight      uint64 // digest weight landed since the last plan
	lastDecay      simnet.Time
	planned        bool
	nextRing       int64
	freeRings      []int64

	promotions   metrics.Counter
	demotions    metrics.Counter
	digests      metrics.Counter
	mallocs      metrics.Counter
	frees        metrics.Counter
	hits         metrics.Counter // mediated reads served from the local DRAM arena
	peerHits     metrics.Counter // mediated reads proxied from a peer's DRAM arena
	misses       metrics.Counter // mediated reads served from home NVM
	peerErrs     metrics.Counter // peer copy I/O failures that demoted the entry
	hostedReads  metrics.Counter // hosted-copy reads served for remote homes
	releaseErrs  metrics.Counter // copy releases that failed (double release)
	seqRetries   metrics.Counter // seqlock read attempts retried (writer raced)
	seqFallbacks metrics.Counter // seqlock reads that gave up and took the locked path

	releaseErrOnce sync.Once // gates the one release-failure log line
}

// New builds an engine: devices, allocator, lock and lease tables, and
// the proxy flusher. The engine will not promote objects until the mount
// installs a Placer.
func New(ec Config) (*Engine, error) {
	cfg := ec.Cluster
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := ec.Name
	if name == "" {
		name = fmt.Sprintf("engine-%d", ec.ID)
	}
	nvm, err := hmem.NewDevice(name+"/nvm", cfg.NVMBytes, cfg.PoolMedia)
	if err != nil {
		return nil, err
	}
	cacheDev, err := hmem.NewDevice(name+"/cache", cfg.DRAMBufferBytes, cfg.BufferMedia)
	if err != nil {
		return nil, err
	}
	ringDev, err := hmem.NewDevice(name+"/rings", cfg.RingBytes, cfg.BufferMedia)
	if err != nil {
		return nil, err
	}
	lockDev, err := hmem.NewDevice(name+"/locks", int64(cfg.LockSlots)*lock.SlotBytes, cfg.BufferMedia)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		id:       ec.ID,
		name:     name,
		cfg:      cfg,
		clk:      ec.Clock,
		cpu:      simnet.NewResource(name + "/cpu"),
		nvm:      nvm,
		cacheDev: cacheDev,
		ringDev:  ringDev,
		lockDev:  lockDev,
		objIdx:   newObjIndex(),
		remap:    cache.NewRemapTable(),
		sketch:   hotness.NewSpaceSaving(cfg.Hotness.SketchK),
		policy: hotness.Policy{
			BudgetBytes: cfg.DRAMBufferBytes,
			MinWeight:   cfg.Hotness.MinWeight,
			Hysteresis:  cfg.Hotness.Hysteresis,
			MaxChurn:    cfg.Hotness.MaxChurn,
		},
	}

	e.localIO = localCopyIO{e: e}

	if e.pool, err = alloc.NewSharded(cfg.NVMBytes); err != nil {
		return nil, err
	}
	// Burn offset 0 so no object is ever at the nil global address.
	if err := e.pool.Reserve(0, alloc.MinBlock); err != nil {
		return nil, err
	}
	if e.bufp, err = cache.NewBufferPool(cacheDev); err != nil {
		return nil, err
	}
	if e.lockTbl, err = lock.NewTable(lockDev, 0, cfg.LockSlots); err != nil {
		return nil, err
	}
	if e.leases, err = lock.NewLeaseTable(cfg.LockSlots, nil); err != nil {
		return nil, err
	}
	// Server-mediated writers publish through the same version words the
	// one-sided protocol uses: an exclusive lease release bumps the slot's
	// version so readers observe that the object changed.
	e.leases.OnWriterRelease(func(addr region.GAddr) { _ = e.lockTbl.BumpVersionRaw(addr) })
	if e.flusher, err = proxy.NewEngine(proxy.Config{
		RingDev:       ringDev,
		NVM:           nvm,
		CPU:           e.cpu,
		PollCost:      cfg.Proxy.PollCost,
		CacheApply:    e.ApplyToCache,
		FlushAdaptive: cfg.Proxy.FlushAdaptive,
		FlushMaxLag:   cfg.Proxy.FlushMaxLag,
	}); err != nil {
		return nil, err
	}
	return e, nil
}

// ID returns the engine's pool ID.
func (e *Engine) ID() uint16 { return e.id }

// Name returns the engine's device-name prefix.
func (e *Engine) Name() string { return e.name }

// Now returns the clock's current instant, or zero without a clock.
func (e *Engine) Now() simnet.Time {
	if e.clk == nil {
		return 0
	}
	return e.clk.Now()
}

// Features returns the deployment's feature switches.
func (e *Engine) Features() config.Features { return e.cfg.Features }

// Config returns the engine's cluster configuration.
func (e *Engine) Config() config.Cluster { return e.cfg }

// CPU returns the engine's simulated CPU resource (request processing
// and flusher polling contend on it).
func (e *Engine) CPU() *simnet.Resource { return e.cpu }

// NVM returns the engine's pool device.
func (e *Engine) NVM() *hmem.Device { return e.nvm }

// CacheDev returns the engine's DRAM buffer arena device.
func (e *Engine) CacheDev() *hmem.Device { return e.cacheDev }

// RingDev returns the engine's staging-ring device.
func (e *Engine) RingDev() *hmem.Device { return e.ringDev }

// LockDev returns the engine's lock-table device.
func (e *Engine) LockDev() *hmem.Device { return e.lockDev }

// Pool returns the engine's NVM pool allocator.
func (e *Engine) Pool() *alloc.ShardedPool { return e.pool }

// BufferPool returns the engine's DRAM buffer arena allocator.
func (e *Engine) BufferPool() *cache.BufferPool { return e.bufp }

// Remap returns the engine's remap table.
func (e *Engine) Remap() *cache.RemapTable { return e.remap }

// Flusher returns the engine's proxy flusher.
func (e *Engine) Flusher() *proxy.Engine { return e.flusher }

// LockTable returns the engine's one-sided lock table.
func (e *Engine) LockTable() *lock.Table { return e.lockTbl }

// Leases returns the engine's server-mediated lease table.
func (e *Engine) Leases() *lock.LeaseTable { return e.leases }

// SetPlacer installs the deployment's promotion placement strategy. It
// must be called before traffic; the simulated mount installs a
// registry-backed cluster-wide placer at join time, the TCP mount a
// local one at construction.
func (e *Engine) SetPlacer(p Placer) { e.placer = p }

// RingGeometry returns the per-session staging-ring shape.
func (e *Engine) RingGeometry() (slots, slotSize int) {
	return e.cfg.Proxy.RingSlots, e.cfg.Proxy.RingSlotSize
}

// Close stops the engine's flusher.
func (e *Engine) Close() {
	e.flusher.Close()
}

// --- operations ---

// Malloc allocates size bytes from the pool and registers the object.
func (e *Engine) Malloc(size int64) (region.GAddr, error) {
	if size <= 0 {
		return region.NilGAddr, fmt.Errorf("engine: malloc of %d bytes", size)
	}
	off, err := e.pool.Alloc(size)
	if err != nil {
		return region.NilGAddr, err
	}
	addr, err := region.NewGAddr(e.id, off)
	if err != nil {
		freeErr := e.pool.Free(off)
		return region.NilGAddr, errors.Join(err, freeErr)
	}
	e.objIdx.insert(addr, alloc.BlockSize(size))
	e.mallocs.Inc()
	return addr, nil
}

// Free releases the object at addr, demoting any DRAM copy first so no
// copy outlives the object.
func (e *Engine) Free(addr region.GAddr) error {
	if !e.objIdx.remove(addr) {
		return fmt.Errorf("%w: free of %v", ErrUnknownObject, addr)
	}
	released := e.remap.Apply(nil, []region.GAddr{addr})
	for _, loc := range released {
		e.releaseCopy(loc)
		e.demotions.Inc()
	}
	if err := e.pool.Free(addr.Offset()); err != nil {
		return err
	}
	e.frees.Inc()
	return nil
}

// AdoptObject registers an already-reserved allocation as a live object
// — the snapshot-restore path, where the pool image carries the data and
// the allocator has re-reserved the ranges.
func (e *Engine) AdoptObject(off, size int64) error {
	addr, err := region.NewGAddr(e.id, off)
	if err != nil {
		return err
	}
	e.objIdx.insert(addr, size)
	return nil
}

// ObjectSpan resolves a byte range to its containing live object.
func (e *Engine) ObjectSpan(addr region.GAddr, size int64) (base region.GAddr, objSize int64, ok bool) {
	return e.objIdx.findContaining(addr, size)
}

// Digest lands one hotness digest: every entry's weight is charged to
// its containing object in the sketch, and — when caching is on — the
// engine considers a promotion/demotion plan at instant at. It returns
// the remap epoch so clients know when to refetch their view.
func (e *Engine) Digest(at simnet.Time, entries []hotness.Entry) uint64 {
	// One lock acquisition per digest, not per entry: sessions stage
	// observations locally and land them in batches, so the sketch lock
	// is off the per-op path entirely and cheap even at digest time.
	e.mu.Lock()
	for _, ent := range entries {
		// Resolve the raw verb target to its containing object; the
		// digest reports verb semantics, the engine owns the layout.
		// findContaining is lock-free, so resolving under e.mu is safe.
		base, _, ok := e.objIdx.findContaining(ent.Addr, 1)
		if !ok {
			continue // freed or foreign address
		}
		weight := ent.Weight()
		e.sketch.Add(base, weight)
		e.newWeight += weight
	}
	e.mu.Unlock()
	e.digests.Inc()
	if e.cfg.Features.Cache {
		e.MaybePlan(at)
	}
	return e.remap.Epoch()
}

// RemapSnapshot exposes the current remap table (epoch + entries).
func (e *Engine) RemapSnapshot() (uint64, map[region.GAddr]cache.Location) {
	return e.remap.Snapshot()
}

// OpenRing leases a staging ring for a new session and returns its base
// offset in the ring device.
func (e *Engine) OpenRing() (int64, error) {
	ringSize := int64(e.cfg.Proxy.RingSlots) * int64(e.cfg.Proxy.RingSlotSize)
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.freeRings); n > 0 {
		base := e.freeRings[n-1]
		e.freeRings = e.freeRings[:n-1]
		return base, nil
	}
	base := e.nextRing
	if base+ringSize > e.ringDev.Size() {
		return 0, fmt.Errorf("%w: %s", ErrRingSpaceExhausted, e.name)
	}
	e.nextRing += ringSize
	return base, nil
}

// CloseRing returns a session's staging ring for reuse. The caller must
// have drained the ring's writer first; the engine trusts it here
// because ring contents are only interpreted via the flusher queue,
// which the departing writer no longer feeds.
func (e *Engine) CloseRing(base int64) error {
	ringSize := int64(e.cfg.Proxy.RingSlots) * int64(e.cfg.Proxy.RingSlotSize)
	e.mu.Lock()
	defer e.mu.Unlock()
	if base < 0 || base+ringSize > e.nextRing || base%ringSize != 0 {
		return fmt.Errorf("engine %s: close of bogus ring %d", e.name, base)
	}
	for _, f := range e.freeRings {
		if f == base {
			return fmt.Errorf("engine %s: double close of ring %d", e.name, base)
		}
	}
	e.freeRings = append(e.freeRings, base)
	return nil
}

// RefreshCopy re-reads the just-written NVM range and refreshes the
// promoted DRAM copy covering it, if any — the write-through path that
// keeps copies coherent after direct NVM writes.
func (e *Engine) RefreshCopy(at simnet.Time, addr region.GAddr, size int64) (simnet.Time, error) {
	base, _, ok := e.objIdx.findContaining(addr, size)
	if !ok {
		return at, nil // object freed; nothing to refresh
	}
	loc, promoted := e.remap.Lookup(base)
	if !promoted {
		return at, nil
	}
	data := make([]byte, size)
	tRead, err := e.nvm.Read(at, addr.Offset(), data)
	if err != nil {
		return at, err
	}
	delta := addr.Offset() - base.Offset()
	end, err := e.writeCopy(tRead, loc, delta, data)
	if err != nil {
		// The write itself landed in NVM; only the copy refresh failed
		// (typically an unreachable peer holding the copy). Demote the
		// entry — reads fall back to authoritative NVM — and swallow the
		// error so a dead peer never surfaces as a client write failure.
		e.peerErrs.Inc()
		e.demoteCopy(base)
		return tRead, nil
	}
	return end, nil
}

// ApplyToCache is the proxy flusher's write-through hook: after a staged
// record lands in NVM, refresh the promoted DRAM copy (if any) so cache
// reads observe the new data.
func (e *Engine) ApplyToCache(at simnet.Time, addr region.GAddr, data []byte) simnet.Time {
	base, _, ok := e.objIdx.findContaining(addr, int64(len(data)))
	if !ok {
		return at
	}
	loc, promoted := e.remap.Lookup(base)
	if !promoted {
		return at
	}
	delta := addr.Offset() - base.Offset()
	if delta < 0 || delta+int64(len(data)) > loc.Size {
		return at
	}
	end, err := e.writeCopy(at, loc, delta, data)
	if err != nil {
		// The flushed record is durable in NVM; a copy that cannot be
		// refreshed (unreachable peer) must not keep serving stale reads.
		e.peerErrs.Inc()
		e.demoteCopy(base)
		return at
	}
	return end
}

// ReadSource identifies where a mediated read was served from.
type ReadSource uint8

// Read sources, in escalation order: the local arena's lock-free hit
// path, a peer's arena over the daemon link, then home NVM.
const (
	ReadMiss     ReadSource = iota // home NVM
	ReadHitLocal                   // DRAM copy in the local arena
	ReadHitPeer                    // DRAM copy on a peer, proxied over the peer link
)

// Hit reports whether the read was served from a DRAM copy anywhere.
func (s ReadSource) Hit() bool { return s != ReadMiss }

// ReadAt is the server-mediated read path (the TCP mount's gread): it
// serves the range from the local DRAM copy when the containing object
// is promoted into this arena, proxies through the placer when the copy
// was spilled to a peer, and falls back to home NVM otherwise. It
// reports which of the three served the read.
func (e *Engine) ReadAt(at simnet.Time, addr region.GAddr, buf []byte) (end simnet.Time, src ReadSource, err error) {
	if e.cfg.Features.Cache {
		if end, ok := e.readCopy(at, addr, buf); ok {
			e.hits.Inc()
			return end, ReadHitLocal, nil
		}
		if end, ok := e.readPeerCopy(at, addr, buf); ok {
			e.peerHits.Inc()
			return end, ReadHitPeer, nil
		}
	}
	e.misses.Inc()
	end, err = e.nvm.Read(at, addr.Offset(), buf)
	return end, ReadMiss, err
}

// seqlockAttempts bounds the optimistic read retries before readCopy
// falls back to the locked path: a raced writer costs one retry, so
// more than a handful in a row means pathological write pressure on
// one object and the locked path's fairness is worth its mutex.
const seqlockAttempts = 4

// readCopy attempts to serve buf from a local promoted copy, validating
// the generation header against the remap entry (a mismatched header
// means the buffer slot was reused for a different object).
//
// The hit path is lock-free: object index and remap lookups follow
// copy-on-write snapshots, and the copy bytes are read with a seqlock —
// load the copy's seq word (even means quiescent), compare the
// generation word, copy the data with atomic word loads, then re-check
// both words. A racing writer flips seq odd before mutating and +2
// after, so any torn copy is detected and retried; after
// seqlockAttempts failures the read falls back to the mutex-guarded
// device path, which writers still exclude.
//
//gengar:hotpath
func (e *Engine) readCopy(at simnet.Time, addr region.GAddr, buf []byte) (simnet.Time, bool) {
	base, _, ok := e.objIdx.findContaining(addr, int64(len(buf)))
	if !ok {
		return at, false
	}
	loc, promoted := e.remap.Lookup(base)
	if !promoted || loc.Node != e.name {
		return at, false // not promoted, or the copy lives on a peer
	}
	delta := addr.Offset() - base.Offset()
	if delta < 0 || delta+int64(len(buf)) > loc.Size {
		return at, false
	}
	return e.seqlockReadCopy(at, loc, delta, buf)
}

// seqlockReadCopy runs the lock-free generation-checked read protocol
// against a local arena location — the shared core of the mediated hit
// path, the placer's local ReadCopy, and hosted-copy reads. A false
// return means the generation no longer matches (slot demoted or
// reused) or the device failed; retries exhausted fall back to the
// locked path, which still validates the generation.
//
//gengar:hotpath
func (e *Engine) seqlockReadCopy(at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, bool) {
	genWord := hmem.BEWord(loc.Gen)
	for try := 0; try < seqlockAttempts; try++ {
		seq1, err := e.cacheDev.LoadWordRaw(loc.Off + cache.CopySeqOff)
		if err != nil {
			return at, false
		}
		if seq1&1 != 0 { // writer in progress
			e.seqRetries.Inc()
			continue
		}
		gen, err := e.cacheDev.LoadWordRaw(loc.Off + cache.CopyGenOff)
		if err != nil || gen != genWord {
			return at, false // slot demoted and reused
		}
		if err := e.cacheDev.ReadWordsRaw(loc.Off+cache.CopyHeaderBytes+delta, buf); err != nil {
			return at, false
		}
		seq2, err := e.cacheDev.LoadWordRaw(loc.Off + cache.CopySeqOff)
		if err != nil {
			return at, false
		}
		gen2, err := e.cacheDev.LoadWordRaw(loc.Off + cache.CopyGenOff)
		if err != nil {
			return at, false
		}
		if seq2 == seq1 && gen2 == genWord {
			return at, true
		}
		e.seqRetries.Inc()
	}
	e.seqFallbacks.Inc()
	return e.readCopyLocked(at, loc, delta, buf)
}

// readCopyLocked is the pre-seqlock hit path: mutex-guarded device
// reads with simulated timing. Sustained writer pressure lands here
// (bounded by seqlockAttempts); writers hold the device write lock
// while mutating, so the locked read can never observe a torn copy.
func (e *Engine) readCopyLocked(at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, bool) {
	var hdr [8]byte
	//gengar:lint-ignore atomic-mixed-access locked fallback: writers hold the device write lock while mutating, so this plain read cannot observe a torn header
	end, err := e.cacheDev.Read(at, loc.Off+cache.CopyGenOff, hdr[:])
	if err != nil || binary.BigEndian.Uint64(hdr[:]) != loc.Gen {
		return at, false
	}
	end, err = e.cacheDev.Read(end, loc.Off+cache.CopyHeaderBytes+delta, buf)
	if err != nil {
		return at, false
	}
	return end, true
}

// readPeerCopy serves buf through the placer when the containing
// object's copy was spilled to a peer's arena. The generation check
// happens at the holder; any failure — a dead peer, a stale generation,
// a copy the holder already recycled — demotes the entry so subsequent
// reads go straight to home NVM, and reports a miss rather than an
// error: home NVM is always authoritative.
func (e *Engine) readPeerCopy(at simnet.Time, addr region.GAddr, buf []byte) (simnet.Time, bool) {
	if e.placer == nil {
		return at, false
	}
	base, _, ok := e.objIdx.findContaining(addr, int64(len(buf)))
	if !ok {
		return at, false
	}
	loc, promoted := e.remap.Lookup(base)
	if !promoted || loc.Node == e.name {
		return at, false // local copies were already tried lock-free
	}
	delta := addr.Offset() - base.Offset()
	if delta < 0 || delta+int64(len(buf)) > loc.Size {
		return at, false
	}
	end, err := e.placer.ReadCopy(at, loc, delta, buf)
	if err != nil {
		e.peerErrs.Inc()
		e.demoteCopy(base)
		return at, false
	}
	return end, true
}

// demoteCopy drops the promoted entry for base and releases whatever
// location the remap table still held — the graceful-degradation path
// for unreachable or stale peer copies. Apply serializes concurrent
// demoters, so exactly one caller receives (and releases) the location.
func (e *Engine) demoteCopy(base region.GAddr) {
	for _, loc := range e.remap.Apply(nil, []region.GAddr{base}) {
		e.releaseCopy(loc)
		e.demotions.Inc()
	}
}

// WriteNVM is the server-mediated direct write path: data lands in home
// NVM, then any promoted copy is refreshed so cache reads observe it.
func (e *Engine) WriteNVM(at simnet.Time, addr region.GAddr, data []byte) (simnet.Time, error) {
	end, err := e.nvm.Write(at, addr.Offset(), data)
	if err != nil {
		return at, err
	}
	if e.cfg.Features.Cache {
		return e.RefreshCopy(end, addr, int64(len(data)))
	}
	return end, nil
}

// Version returns the current value of the version word covering addr —
// bumped by one-sided writers via RDMA FETCH_ADD and by lease-mediated
// writers on exclusive release.
func (e *Engine) Version(addr region.GAddr) uint64 {
	return e.lockTbl.ReadVersionRaw(addr)
}

// Stats is an engine activity snapshot.
type Stats struct {
	Objects    int
	PoolUsed   int64
	BufferUsed int64
	Promoted   int
	Promotions int64
	Demotions  int64
	Digests    int64
	Mallocs    int64
	Frees      int64
	Hits       int64 // mediated reads served from the local DRAM arena
	PeerHits   int64 // mediated reads proxied from a peer's DRAM arena
	Misses     int64 // mediated reads served from home NVM
	// PeerErrors counts peer copy I/O failures that demoted an entry
	// back to NVM service (dead peer, stale generation at the holder).
	PeerErrors int64
	// HostedCopies/HostedBytes are the copies remote homes spilled into
	// this arena and their footprint; HostedReads counts reads this
	// holder served for them. ReleaseErrors counts copy releases that
	// failed (double release upstream).
	HostedCopies  int
	HostedBytes   int64
	HostedReads   int64
	ReleaseErrors int64
	// SeqRetries counts seqlock read attempts retried because a writer
	// raced the copy; SeqFallbacks counts reads that exhausted their
	// retries and took the locked path.
	SeqRetries   int64
	SeqFallbacks int64
	Proxy        proxy.EngineStats
	RemapEpoch   uint64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	hostedCopies, hostedBytes := e.HostedStats()
	return Stats{
		Objects:       e.objIdx.count(),
		PoolUsed:      e.pool.AllocatedBytes(),
		BufferUsed:    e.bufp.UsedBytes(),
		Promoted:      e.remap.Len(),
		Promotions:    e.promotions.Load(),
		Demotions:     e.demotions.Load(),
		Digests:       e.digests.Load(),
		Mallocs:       e.mallocs.Load(),
		Frees:         e.frees.Load(),
		Hits:          e.hits.Load(),
		PeerHits:      e.peerHits.Load(),
		Misses:        e.misses.Load(),
		PeerErrors:    e.peerErrs.Load(),
		HostedCopies:  hostedCopies,
		HostedBytes:   hostedBytes,
		HostedReads:   e.hostedReads.Load(),
		ReleaseErrors: e.releaseErrs.Load(),
		SeqRetries:    e.seqRetries.Load(),
		SeqFallbacks:  e.seqFallbacks.Load(),
		Proxy:         e.flusher.Stats(),
		RemapEpoch:    e.remap.Epoch(),
	}
}

// RegisterTelemetry exposes the engine's live counters and derived state
// in reg under the gengar_server_* names with the given labels. The same
// counter instances back both Stats and the registry, so the two views
// never disagree.
func (e *Engine) RegisterTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("gengar_server_promotions_total", "objects promoted to DRAM", &e.promotions, labels...)
	reg.RegisterCounter("gengar_server_demotions_total", "objects demoted from DRAM", &e.demotions, labels...)
	reg.RegisterCounter("gengar_server_digests_total", "hotness digests received", &e.digests, labels...)
	reg.RegisterCounter("gengar_server_mallocs_total", "gmalloc requests served", &e.mallocs, labels...)
	reg.RegisterCounter("gengar_server_frees_total", "gfree requests served", &e.frees, labels...)
	reg.RegisterCounter("gengar_server_cache_hits_total", "mediated reads served from the local DRAM arena", &e.hits, labels...)
	reg.RegisterCounter("gengar_server_peer_hits_total", "mediated reads proxied from a peer's DRAM arena", &e.peerHits, labels...)
	reg.RegisterCounter("gengar_server_cache_misses_total", "mediated reads served from home NVM", &e.misses, labels...)
	reg.RegisterCounter("gengar_server_peer_copy_errors_total", "peer copy I/O failures that demoted an entry back to NVM", &e.peerErrs, labels...)
	reg.RegisterCounter("gengar_server_hosted_reads_total", "hosted-copy reads served for remote homes", &e.hostedReads, labels...)
	reg.RegisterCounter("gengar_cache_release_errors_total", "copy releases that failed (double release upstream)", &e.releaseErrs, labels...)
	reg.RegisterCounter("gengar_read_seqlock_retries_total", "lock-free cache reads retried because a writer raced the copy", &e.seqRetries, labels...)
	reg.RegisterCounter("gengar_read_seqlock_fallbacks_total", "lock-free cache reads that fell back to the locked path", &e.seqFallbacks, labels...)
	reg.GaugeFunc("gengar_server_objects", "live objects homed here", func() int64 {
		return int64(e.objIdx.count())
	}, labels...)
	reg.GaugeFunc("gengar_server_pool_used_bytes", "NVM pool bytes allocated", func() int64 {
		return e.pool.AllocatedBytes()
	}, labels...)
	reg.GaugeFunc("gengar_server_buffer_used_bytes", "DRAM buffer bytes holding promoted copies", func() int64 {
		return e.bufp.UsedBytes()
	}, labels...)
	reg.GaugeFunc("gengar_server_buffer_capacity_bytes", "DRAM buffer arena size", func() int64 {
		return e.cacheDev.Size()
	}, labels...)
	reg.GaugeFunc("gengar_server_promoted_objects", "objects with a live DRAM copy", func() int64 {
		return int64(e.remap.Len())
	}, labels...)
	reg.GaugeFunc("gengar_server_hosted_copies", "copies remote homes spilled into this arena", func() int64 {
		n, _ := e.HostedStats()
		return int64(n)
	}, labels...)
	reg.GaugeFunc("gengar_server_hosted_bytes", "arena bytes holding remote homes' copies", func() int64 {
		_, b := e.HostedStats()
		return b
	}, labels...)
	reg.GaugeFunc("gengar_server_remap_epoch", "remap table epoch", func() int64 {
		return int64(e.remap.Epoch())
	}, labels...)
	// Per-shard allocator occupancy: one gauge per (pool, shard), so a
	// skewed shard shows up as imbalance rather than vanishing into the
	// pool-wide total. Shard labels are bound once at registration.
	registerShardGauges(reg, "nvm", e.pool, labels)
	registerShardGauges(reg, "dram", e.bufp.Allocator(), labels)
	e.flusher.RegisterTelemetry(reg, labels...)
}

// registerShardGauges exposes one occupancy gauge and one slab-count
// gauge per allocator shard.
func registerShardGauges(reg *telemetry.Registry, pool string, p *alloc.ShardedPool, labels []telemetry.Label) {
	for i := 0; i < p.Shards(); i++ {
		shard := i
		sl := make([]telemetry.Label, 0, len(labels)+2)
		sl = append(sl, labels...)
		sl = append(sl, telemetry.L("pool", pool), telemetry.L("shard", strconv.Itoa(shard)))
		reg.GaugeFunc("gengar_alloc_shard_used_bytes", "live slab-slot bytes in this allocator shard", func() int64 {
			return p.ShardStats()[shard].UserBytes
		}, sl...)
		reg.GaugeFunc("gengar_alloc_shard_slabs", "slab parents held by this allocator shard", func() int64 {
			return int64(p.ShardStats()[shard].Slabs)
		}, sl...)
	}
}
