package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gengar/internal/cache"
	"gengar/internal/hotness"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// promoteObject digests heavy traffic on addr and waits for the plan to
// execute, failing the test if the object does not end up promoted.
func promoteObject(t *testing.T, eng *Engine, addr region.GAddr) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for at := int64(1); time.Now().Before(deadline); at++ {
		eng.Digest(simnet.Time(at)*simnet.Time(10*time.Millisecond), []hotness.Entry{{Addr: addr, Reads: 1000}})
		planBarrier(t, eng)
		if _, ok := eng.Remap().Lookup(addr); ok {
			return
		}
	}
	t.Fatal("object never promoted")
}

// TestEngineConcurrentOps is the engine-level concurrency stress:
// parallel Malloc/Free churn, NVM writes, mediated reads and digest
// traffic (promotions/demotions) against one engine, meant for the
// race detector. Assertions are minimal — the value of the test is
// that every access is exercised while lookup structures swap and the
// seqlock read path races writers and the promotion planner.
func TestEngineConcurrentOps(t *testing.T) {
	eng := newTestEngine(t)
	eng.SetPlacer(NewLocalPlacer(eng))

	hot, err := eng.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WriteNVM(0, hot, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	promoteObject(t, eng, hot)

	iters := 2000
	if testing.Short() {
		iters = 400
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 16)

	// Malloc/Free churn: swaps the object index snapshot constantly.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				a, err := eng.Malloc(1024)
				if err != nil {
					fail <- "malloc: " + err.Error()
					return
				}
				if _, _, ok := eng.ObjectSpan(a, 16); !ok {
					fail <- "fresh object not found"
					return
				}
				if err := eng.Free(a); err != nil {
					fail <- "free: " + err.Error()
					return
				}
			}
		}()
	}

	// Writers: direct NVM writes with write-through copy refresh.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(pat byte) {
			defer wg.Done()
			data := make([]byte, 512)
			for i := range data {
				data[i] = pat
			}
			for i := 0; i < iters && !stop.Load(); i++ {
				if _, err := eng.WriteNVM(0, hot, data); err != nil {
					fail <- "write: " + err.Error()
					return
				}
			}
		}(byte(0x11 * (w + 1)))
	}

	// Readers: the seqlock hit path under writer and planner pressure.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < iters && !stop.Load(); i++ {
				if _, _, err := eng.ReadAt(0, hot, buf); err != nil {
					fail <- "read: " + err.Error()
					return
				}
			}
		}()
	}

	// Digest traffic: keeps the planner (and remap swaps) busy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4 && !stop.Load(); i++ {
			eng.Digest(simnet.Time(i)*simnet.Time(time.Millisecond),
				[]hotness.Entry{{Addr: hot, Reads: 10}})
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		stop.Store(true)
		t.Fatal(msg)
	default:
	}
	if st := eng.Stats(); st.Hits == 0 {
		t.Fatalf("stress run never hit the cache: %+v", st)
	}
}

// TestSeqlockReadNeverTears is the dedicated torn-read race test: one
// writer alternates uniform byte patterns over a promoted object while
// readers serve cache hits from the lock-free path. Any hit that
// returns a mix of patterns is a torn read — the failure mode the
// seqlock re-check exists to prevent.
func TestSeqlockReadNeverTears(t *testing.T) {
	eng := newTestEngine(t)
	eng.SetPlacer(NewLocalPlacer(eng))

	const objSize = 2048
	hot, err := eng.Malloc(objSize)
	if err != nil {
		t.Fatal(err)
	}
	pattern := func(p byte) []byte {
		b := make([]byte, objSize)
		for i := range b {
			b[i] = p
		}
		return b
	}
	if _, err := eng.WriteNVM(0, hot, pattern(0xAA)); err != nil {
		t.Fatal(err)
	}
	promoteObject(t, eng, hot)

	iters := 4000
	if testing.Short() {
		iters = 800
	}
	var stop atomic.Bool
	var torn atomic.Int64
	var hits atomic.Int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		pats := [2][]byte{pattern(0xAA), pattern(0xBB)}
		for i := 0; i < iters; i++ {
			if _, err := eng.WriteNVM(0, hot, pats[i&1]); err != nil {
				t.Error(err)
				break
			}
		}
		stop.Store(true)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(span int) {
			defer wg.Done()
			buf := make([]byte, span)
			for !stop.Load() {
				_, src, err := eng.ReadAt(0, region.MustGAddr(1, hot.Offset()+64), buf)
				if err != nil {
					t.Error(err)
					return
				}
				if !src.Hit() {
					continue
				}
				hits.Add(1)
				first := buf[0]
				if first != 0xAA && first != 0xBB {
					torn.Add(1)
					return
				}
				for _, b := range buf {
					if b != first {
						torn.Add(1)
						return
					}
				}
			}
		}(128 + 256*r)
	}
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
	if hits.Load() == 0 {
		t.Fatal("writer raced every read: no cache hits observed")
	}
	st := eng.Stats()
	t.Logf("hits=%d seqlock retries=%d fallbacks=%d", hits.Load(), st.SeqRetries, st.SeqFallbacks)
}

// TestSeqlockRetriesBounded pins the fallback contract: retries are
// counted, and a read either succeeds via the optimistic path or falls
// back after at most seqlockAttempts tries — it never spins unbounded.
func TestSeqlockRetriesBounded(t *testing.T) {
	eng := newTestEngine(t)
	eng.SetPlacer(NewLocalPlacer(eng))
	hot, err := eng.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WriteNVM(0, hot, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	promoteObject(t, eng, hot)

	// Wedge the copy's seq word odd, as a stalled writer would.
	loc, ok := eng.Remap().Lookup(hot)
	if !ok {
		t.Fatal("not promoted")
	}
	seq, err := eng.CacheDev().LoadWordRaw(loc.Off + cache.CopySeqOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CacheDev().StoreWordRaw(loc.Off+cache.CopySeqOff, seq|1); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 64)
	_, src, err := eng.ReadAt(0, hot, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Hit() {
		t.Fatal("locked fallback should still serve the hit")
	}
	st := eng.Stats()
	if st.SeqFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.SeqFallbacks)
	}
	if st.SeqRetries != seqlockAttempts {
		t.Fatalf("retries = %d, want %d", st.SeqRetries, seqlockAttempts)
	}
}
