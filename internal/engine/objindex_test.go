package engine

import (
	"testing"
	"testing/quick"

	"gengar/internal/region"
)

func TestObjIndexBasics(t *testing.T) {
	x := newObjIndex()
	a := region.MustGAddr(1, 128)
	x.insert(a, 64)
	x.insert(a, 999) // duplicate ignored
	if x.count() != 1 || x.sizeOf(a) != 64 {
		t.Fatalf("count=%d size=%d", x.count(), x.sizeOf(a))
	}
	base, size, ok := x.findContaining(a.Add(63), 1)
	if !ok || base != a || size != 64 {
		t.Fatalf("contains: %v %d %v", base, size, ok)
	}
	if _, _, ok := x.findContaining(a.Add(63), 2); ok {
		t.Fatal("range crossing object end matched")
	}
	if _, _, ok := x.findContaining(region.MustGAddr(1, 64), 1); ok {
		t.Fatal("address below all objects matched")
	}
	if !x.remove(a) {
		t.Fatal("remove failed")
	}
	if x.remove(a) {
		t.Fatal("double remove succeeded")
	}
	if x.sizeOf(a) != 0 {
		t.Fatal("size after remove")
	}
}

func TestObjIndexFindProperty(t *testing.T) {
	// Property: with disjoint objects, findContaining resolves interior
	// bytes to the right base and gaps to nothing.
	f := func(seedBits uint16) bool {
		x := newObjIndex()
		inserted := make(map[int64]bool)
		for i := 0; i < 16; i++ {
			if seedBits>>uint(i)&1 == 1 {
				x.insert(region.MustGAddr(1, int64(i+1)*256), 128)
				inserted[int64(i+1)*256] = true
			}
		}
		for i := 1; i <= 16; i++ {
			off := int64(i) * 256
			base, _, ok := x.findContaining(region.MustGAddr(1, off+100), 4)
			if inserted[off] {
				if !ok || base.Offset() != off {
					return false
				}
			} else if ok && base.Offset() == off {
				return false
			}
			// Bytes past the object end never match it.
			if base2, _, ok2 := x.findContaining(region.MustGAddr(1, off+128), 1); ok2 && base2.Offset() == off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
