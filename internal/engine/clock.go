package engine

import (
	"time"

	"gengar/internal/simnet"
)

// Clock supplies the engine's notion of "now" when a transport mount has
// no per-request timestamp of its own. The simulated-RDMA mount never
// needs one — every RPC carries the caller's virtual-time instant — but
// the TCP mount serves wall-clock traffic, so it feeds the engine real
// elapsed time through a WallClock.
type Clock interface {
	// Now returns the current instant on the engine timeline.
	Now() simnet.Time
}

// WallClock maps wall time onto the engine timeline: instants are
// nanoseconds since the clock was created, so a fresh engine starts near
// zero just like a fresh simulation.
type WallClock struct {
	base time.Time
}

// NewWallClock returns a wall clock whose epoch is now.
func NewWallClock() *WallClock { return &WallClock{base: time.Now()} }

// Now returns nanoseconds elapsed since the clock's epoch.
func (c *WallClock) Now() simnet.Time { return simnet.Time(time.Since(c.base)) }
