// Package placertest is the shared conformance suite for engine.Placer
// implementations. The placement seam has two production mounts — the
// local arena placer and the TCP mount's peer-spilling placer — and the
// engine's read/refresh/demote paths assume the same contract from
// both: fresh nonzero generation stamps, the install/write/read/release
// copy lifecycle, generation-checked staleness after release, and
// untorn reads under concurrent write-through. Each mount's tests run
// this one suite against its placer, so a contract drift in either
// shows up as the same named subtest failing.
package placertest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"gengar/internal/cache"
	"gengar/internal/engine"
)

// CopySize is the data size every conformance copy uses. It is chosen
// large enough that a harness can force its placer's remote arm by
// giving the home arena less than one copy's footprint of space.
const CopySize = 4096

// Run exercises the Placer contract. mk must return a fresh, ready
// placer; harness teardown belongs in t.Cleanup.
func Run(t *testing.T, mk func(t *testing.T) engine.Placer) {
	t.Run("StampFreshness", func(t *testing.T) {
		p := mk(t)
		a := place(t, p)
		b := place(t, p)
		defer p.Release(a)
		defer p.Release(b)
		if a.Gen == b.Gen {
			t.Fatalf("consecutive placements share generation %d", a.Gen)
		}
	})

	t.Run("Lifecycle", func(t *testing.T) {
		p := mk(t)
		loc := place(t, p)
		install(t, p, loc, 0x11)

		buf := make([]byte, CopySize)
		if _, err := p.ReadCopy(0, loc, 0, buf); err != nil {
			t.Fatalf("read after install: %v", err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{0x11}, CopySize)) {
			t.Fatal("install bytes did not round-trip")
		}

		patch := bytes.Repeat([]byte{0x22}, 256)
		if _, err := p.WriteCopy(0, loc, 128, patch); err != nil {
			t.Fatalf("write-through: %v", err)
		}
		got := make([]byte, 512)
		if _, err := p.ReadCopy(0, loc, 0, got); err != nil {
			t.Fatalf("read after write-through: %v", err)
		}
		want := bytes.Repeat([]byte{0x11}, 512)
		copy(want[128:], patch)
		if !bytes.Equal(got, want) {
			t.Fatal("write-through bytes did not land")
		}

		p.Release(loc)
		if _, err := p.ReadCopy(0, loc, 0, buf); !errors.Is(err, engine.ErrStaleCopy) {
			t.Fatalf("read after release: err=%v, want ErrStaleCopy", err)
		}
	})

	t.Run("StaleGeneration", func(t *testing.T) {
		p := mk(t)
		loc := place(t, p)
		defer p.Release(loc)
		install(t, p, loc, 0x33)

		forged := loc
		forged.Gen++ // a location naming a generation the holder never minted
		buf := make([]byte, CopySize)
		if _, err := p.ReadCopy(0, forged, 0, buf); !errors.Is(err, engine.ErrStaleCopy) {
			t.Fatalf("forged-generation read: err=%v, want ErrStaleCopy", err)
		}
	})

	t.Run("TornReads", func(t *testing.T) {
		p := mk(t)
		loc := place(t, p)
		defer p.Release(loc)
		install(t, p, loc, 0xAA)

		const writes = 200
		var wg sync.WaitGroup
		wg.Add(1)
		writerDone := make(chan struct{})
		go func() {
			defer wg.Done()
			defer close(writerDone)
			img := make([]byte, CopySize)
			for i := 0; i < writes; i++ {
				fill := byte(0xAA)
				if i%2 == 1 {
					fill = 0xBB
				}
				for j := range img {
					img[j] = fill
				}
				if _, err := p.WriteCopy(0, loc, 0, img); err != nil {
					t.Errorf("concurrent write: %v", err)
					return
				}
			}
		}()
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, CopySize)
				for {
					select {
					case <-writerDone:
						return
					default:
					}
					if _, err := p.ReadCopy(0, loc, 0, buf); err != nil {
						t.Errorf("concurrent read: %v", err)
						return
					}
					first := buf[0]
					if first != 0xAA && first != 0xBB {
						t.Errorf("read unknown fill %#x", first)
						return
					}
					for _, b := range buf {
						if b != first {
							t.Error("torn read: mixed fills in one copy image")
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	})
}

// place reserves one conformance copy and checks the stamp invariants
// every placement must satisfy: a nonzero generation (zero is the
// released-slot sentinel) and the advertised size.
func place(t *testing.T, p engine.Placer) cache.Location {
	t.Helper()
	loc, err := p.PlaceCopy(CopySize)
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if loc.Gen == 0 {
		t.Fatal("placement stamped the reserved zero generation")
	}
	if loc.Size != CopySize {
		t.Fatalf("placement size = %d, want %d", loc.Size, CopySize)
	}
	return loc
}

// install lands a full copy image under loc's generation, in the wire
// layout InstallCopy expects: the 16-byte copy header (generation word
// big-endian, seqlock word owned by the holder) followed by the data.
func install(t *testing.T, p engine.Placer, loc cache.Location, fill byte) {
	t.Helper()
	payload := make([]byte, cache.CopyHeaderBytes+CopySize)
	binary.BigEndian.PutUint64(payload[cache.CopyGenOff:], loc.Gen)
	for i := cache.CopyHeaderBytes; i < len(payload); i++ {
		payload[i] = fill
	}
	if _, err := p.InstallCopy(0, loc, payload); err != nil {
		t.Fatalf("install: %v", err)
	}
}
