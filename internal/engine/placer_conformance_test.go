package engine_test

import (
	"testing"

	"gengar/internal/config"
	"gengar/internal/engine"
	"gengar/internal/engine/placertest"
)

// TestLocalPlacerConformance runs the shared Placer conformance suite
// against the local-arena placer — the same contract the TCP mount's
// peer-spilling placer is held to by its own conformance run.
func TestLocalPlacerConformance(t *testing.T) {
	placertest.Run(t, func(t *testing.T) engine.Placer {
		cfg := config.Default()
		cfg.Servers = 1
		eng, err := engine.New(engine.Config{ID: 1, Name: "eng-conf", Cluster: cfg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		return engine.NewLocalPlacer(eng)
	})
}
