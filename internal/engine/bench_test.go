package engine

import (
	"bytes"
	"testing"
	"time"

	"gengar/internal/config"
	"gengar/internal/hotness"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// newBenchEngine builds a one-server engine with a local placer and one
// promoted 4 KiB object, returning the engine and the object's address.
// The promotion is verified before the caller starts timing.
func newBenchEngine(b *testing.B) (*Engine, region.GAddr) {
	b.Helper()
	cfg := config.Default()
	cfg.Servers = 1
	eng, err := New(Config{ID: 1, Name: "eng-bench", Cluster: cfg})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	eng.SetPlacer(NewLocalPlacer(eng))

	a, err := eng.Malloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 4096)
	if _, err := eng.WriteNVM(0, a, data); err != nil {
		b.Fatal(err)
	}
	eng.Digest(simnet.Time(time.Millisecond), []hotness.Entry{{Addr: a, Reads: 100}})
	done := make(chan struct{})
	if err := eng.Flusher().Submit(func() { close(done) }); err != nil {
		b.Fatal(err)
	}
	<-done

	buf := make([]byte, 128)
	if _, src, err := eng.ReadAt(0, a, buf); err != nil || !src.Hit() {
		b.Fatalf("warm-up read: src=%v err=%v", src, err)
	}
	return eng, a
}

// BenchmarkReadHitParallel measures the server-mediated cache-hit read
// path under goroutine fan-in — the per-op cost every TCP connection
// pays once the object is promoted. Run with -cpu=1,4,16 to see the
// contention profile; recorded before the seqlock change so the speedup
// is differential, not asserted.
func BenchmarkReadHitParallel(b *testing.B) {
	eng, a := newBenchEngine(b)
	addr := region.MustGAddr(1, a.Offset()+64)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 128)
		for pb.Next() {
			if _, src, err := eng.ReadAt(0, addr, buf); err != nil || !src.Hit() {
				b.Errorf("read src=%v err=%v", src, err)
				return
			}
		}
	})
}
