package engine

import (
	"encoding/binary"

	"gengar/internal/alloc"
	"gengar/internal/cache"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// MaybePlan schedules a promotion/demotion plan on the proxy flusher
// goroutine when an epoch has passed: either PlanEvery of engine time
// since the last plan, or the sketch's total observed weight doubling
// (so a burst of fresh access information is acted on even when little
// time has elapsed). Running on the flusher serializes plans with
// write-throughs, so a copy install can never race a flush of the same
// object.
func (e *Engine) MaybePlan(at simnet.Time) {
	if e.placer == nil {
		return // mount has not enabled promotion
	}
	e.mu.Lock()
	total := e.sketch.Total()
	elapsed := !e.planned || at.Sub(e.lastPlan) >= e.cfg.Hotness.PlanEvery
	grown := total >= 2*e.lastPlanWeight && total > 0
	// Never plan (and in particular never decay) without fresh access
	// information: back-to-back plans on a stale sketch would age the
	// hot set into oblivion.
	if e.newWeight == 0 || (!elapsed && !grown) {
		e.mu.Unlock()
		return
	}
	e.planned = true
	e.lastPlan = at
	e.lastPlanWeight = total
	e.newWeight = 0
	e.mu.Unlock()

	// Best-effort: if the flusher is closing, skip the plan.
	_ = e.flusher.Submit(func() { e.executePlan(at) })
}

// CopyFootprint returns the DRAM arena bytes a promoted copy of the
// object actually consumes: generation header plus data, rounded to the
// buddy allocator's block size. Budgeting the footprint rather than the
// object size keeps plans honest — otherwise the planner overcommits the
// arena ~2x (a power-of-two object plus its 8-byte header rounds up to
// the next block) and promotion/demotion thrashes at the budget edge.
func (e *Engine) CopyFootprint(base region.GAddr) int64 {
	size := e.objIdx.sizeOf(base)
	if size <= 0 {
		return 0
	}
	return alloc.BlockSize(size + cache.CopyHeaderBytes)
}

// executePlan runs one promotion/demotion round at instant at. It must
// only run on the flusher goroutine.
func (e *Engine) executePlan(at simnet.Time) {
	// Capacity-aware planning: the placer reports the aggregate DRAM the
	// plan may budget copies against — the local arena alone for a local
	// placer, local plus live peers' advertised arenas for a peer placer.
	// Queried before taking e.mu (the placer may consult link state with
	// its own locking), and re-read each plan so the budget tracks peers
	// joining and dying: a shrunk budget demotes the overflow, which
	// releases the dead peer's copies.
	budget := e.policy.BudgetBytes
	if b := e.placer.CopyBudget(); b > 0 {
		budget = b
	}
	e.mu.Lock()
	pol := e.policy
	pol.BudgetBytes = budget
	promote, demote := pol.Plan(e.sketch, e.CopyFootprint, e.remap.Promoted())
	// Age the sketch on a wall of engine time, not per plan: several
	// plans may execute back-to-back when digests arrive in bursts, and
	// halving on each would decay a perfectly hot working set to nothing.
	if decayEvery := 4 * e.cfg.Hotness.PlanEvery; at.Sub(e.lastDecay) >= decayEvery {
		e.sketch.Decay()
		e.lastDecay = at
	}
	e.mu.Unlock()

	add := make(map[region.GAddr]cache.Location, len(promote))
	for _, base := range promote {
		size := e.objIdx.sizeOf(base)
		if size <= 0 {
			continue // freed since the plan was computed
		}
		loc, err := e.placer.PlaceCopy(size)
		if err != nil {
			continue // arena full; try again next epoch
		}
		// Read the authoritative NVM data and install header + data.
		payload := make([]byte, cache.CopyHeaderBytes+size)
		binary.BigEndian.PutUint64(payload, loc.Gen)
		tRead, err := e.nvm.Read(at, base.Offset(), payload[cache.CopyHeaderBytes:])
		if err != nil {
			e.placer.Release(loc)
			continue
		}
		if _, err := e.placer.InstallCopy(tRead, loc, payload); err != nil {
			e.placer.Release(loc)
			continue
		}
		add[base] = loc
		e.promotions.Inc()
	}

	released := e.remap.Apply(add, demote)
	for _, loc := range released {
		e.releaseCopy(loc)
		e.demotions.Inc()
	}
}

// writeCopy routes a copy update through the placer (which knows whether
// the copy is local or on a peer). Without a placer the engine never has
// promoted copies, so this is unreachable; it degrades to a no-op.
func (e *Engine) writeCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	if e.placer == nil {
		return at, nil
	}
	return e.placer.WriteCopy(at, loc, delta, data)
}

// releaseCopy returns a demoted copy's arena space through the placer.
func (e *Engine) releaseCopy(loc cache.Location) {
	if e.placer == nil {
		return
	}
	e.placer.Release(loc)
}
