package engine

import (
	"runtime"
	"sync/atomic"

	"gengar/internal/cache"
	"gengar/internal/simnet"
)

// Placer is the deployment's promotion-placement strategy: where a hot
// object's DRAM copy lives and how bytes reach it. The simulated mount
// places cluster-wide (any server's arena, written over mesh queue
// pairs); the TCP mount places into the engine's own arena. Locations
// returned by PlaceCopy must carry a fresh nonzero generation stamp.
type Placer interface {
	// PlaceCopy reserves arena space for a copy of size data bytes (the
	// generation header is added by the placer) and returns its stamped
	// location.
	PlaceCopy(size int64) (cache.Location, error)
	// InstallCopy writes a complete copy — generation header plus object
	// data — into freshly placed buffer space.
	InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error)
	// WriteCopy writes data into the copy's data area at the given delta
	// past the generation header.
	WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error)
	// Release frees the buffer space behind a demoted copy.
	Release(loc cache.Location)
}

// LocalPlacer places promoted copies in the engine's own DRAM arena —
// the single-server strategy of the TCP mount, where there is no mesh to
// spill over. Generation stamps are engine-local; uniqueness within one
// engine is all the generation check needs when copies never leave it.
type LocalPlacer struct {
	e   *Engine
	gen atomic.Uint64
}

// NewLocalPlacer returns a placer over the engine's own buffer arena.
func NewLocalPlacer(e *Engine) *LocalPlacer { return &LocalPlacer{e: e} }

// PlaceCopy reserves local arena space and stamps a fresh generation.
func (p *LocalPlacer) PlaceCopy(size int64) (cache.Location, error) {
	off, err := p.e.bufp.Place(size + cache.CopyHeaderBytes)
	if err != nil {
		return cache.Location{}, err
	}
	return cache.Location{
		Node: p.e.name,
		Off:  off,
		Size: size,
		Gen:  p.gen.Add(1),
	}, nil
}

// acquireSeq flips the copy's seq word odd, spinning out any concurrent
// writer (write-throughs from different sessions can target the same
// copy). It returns the acquired (odd) value.
func (p *LocalPlacer) acquireSeq(loc cache.Location) (uint64, error) {
	off := loc.Off + cache.CopySeqOff
	for {
		s, err := p.e.cacheDev.LoadWordRaw(off)
		if err != nil {
			return 0, err
		}
		if s&1 == 0 {
			ok, err := p.e.cacheDev.CompareAndSwapWordRaw(off, s, s+1)
			if err != nil {
				return 0, err
			}
			if ok {
				return s + 1, nil
			}
		}
		runtime.Gosched()
	}
}

// releaseSeq completes a writer critical section: the word moves from
// odd to the next even value, so any overlapped lock-free read fails
// its re-check and retries.
func (p *LocalPlacer) releaseSeq(loc cache.Location, odd uint64) error {
	return p.e.cacheDev.StoreWordRaw(loc.Off+cache.CopySeqOff, odd+1)
}

// InstallCopy writes header + data into the local arena under the
// copy's seqlock. The slot may be a reused buffer a stale-located
// reader is still optimistically reading: the odd seq (or, after
// release, the changed generation word) forces that reader to retry
// and miss. The seq word itself is owned by the protocol — the
// payload's seq field is skipped, not copied.
func (p *LocalPlacer) InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error) {
	odd, err := p.acquireSeq(loc)
	if err != nil {
		return at, err
	}
	// Gen word first, then data; both are atomic word stores under the
	// device write lock, so the mutex-guarded read path stays torn-free.
	if err := p.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyGenOff, payload[:8]); err != nil {
		return at, err
	}
	if err := p.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyHeaderBytes, payload[cache.CopyHeaderBytes:]); err != nil {
		return at, err
	}
	return at, p.releaseSeq(loc, odd)
}

// WriteCopy updates the copy's data area in the local arena under the
// copy's seqlock, so lock-free readers detect the overlap and retry.
func (p *LocalPlacer) WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	odd, err := p.acquireSeq(loc)
	if err != nil {
		return at, err
	}
	if err := p.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyHeaderBytes+delta, data); err != nil {
		return at, err
	}
	return at, p.releaseSeq(loc, odd)
}

// Release frees the copy's arena space.
func (p *LocalPlacer) Release(loc cache.Location) {
	// A release failure means the location was already released — a
	// bookkeeping bug upstream, but never fatal to the pool.
	_ = p.e.bufp.Release(loc.Off)
}
