package engine

import (
	"errors"
	"log"
	"runtime"
	"sync/atomic"

	"gengar/internal/cache"
	"gengar/internal/simnet"
)

// ErrStaleCopy reports a copy-I/O operation against a location whose
// generation no longer matches the bytes in the arena: the slot was
// demoted and possibly reused since the location was minted. Callers
// treat it as a clean miss — the authoritative NVM copy is still home.
var ErrStaleCopy = errors.New("engine: stale copy generation")

// Generation stamps are cluster-unique on the TCP path: the minting
// engine's pool ID occupies the high bits, a local counter the rest.
// Two daemons can therefore never mint the same stamp, so a buffer
// slot on a peer reused for a different home's copy always fails the
// generation check. Stamp zero is reserved (released slots are zeroed).
const (
	genSaltShift = 48
	genCtrMask   = (uint64(1) << genSaltShift) - 1
)

// Placement is the promotion decision layer: where a hot object's DRAM
// copy should live, and how much aggregate copy capacity the planner
// may budget against.
type Placement interface {
	// PlaceCopy reserves arena space for a copy of size data bytes (the
	// generation header is added by the placer) and returns its stamped
	// location. Locations must carry a fresh nonzero generation stamp.
	PlaceCopy(size int64) (cache.Location, error)
	// CopyBudget reports the aggregate DRAM bytes the promotion planner
	// should budget copies against — the local arena plus any reachable
	// peer capacity. Zero means "use the engine's configured budget".
	CopyBudget() int64
}

// CopyIO is the copy data-plane layer: moving bytes into, out of, and
// away from a placed copy, wherever its location says it lives.
type CopyIO interface {
	// InstallCopy writes a complete copy — generation header plus object
	// data — into freshly placed buffer space.
	InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error)
	// WriteCopy writes data into the copy's data area at the given delta
	// past the generation header.
	WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error)
	// ReadCopy fills buf from the copy's data area at the given delta,
	// validating the location's generation at the holder. A stale or
	// unreachable copy returns an error (ErrStaleCopy when detectably
	// stale); the caller falls back to home NVM and demotes the entry.
	ReadCopy(at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, error)
	// Release frees the buffer space behind a demoted copy.
	Release(loc cache.Location)
}

// Placer is the deployment's promotion-placement strategy: the decision
// layer plus the copy data plane. The simulated mount places
// cluster-wide (any server's arena, written over mesh queue pairs); the
// TCP mount places locally, spilling into peer daemons' arenas when a
// peer set is configured.
type Placer interface {
	Placement
	CopyIO
}

// localCopyIO is the copy data plane over the engine's own DRAM arena:
// seqlocked installs and updates, generation-checked reads, and
// generation-zeroing release. It is shared by LocalPlacer (copies the
// engine placed for itself) and the hosted-copy table (copies peers
// placed here).
type localCopyIO struct {
	e *Engine
}

// acquireSeq flips the copy's seq word odd, spinning out any concurrent
// writer (write-throughs from different sessions can target the same
// copy). It returns the acquired (odd) value.
func (io localCopyIO) acquireSeq(loc cache.Location) (uint64, error) {
	off := loc.Off + cache.CopySeqOff
	for {
		s, err := io.e.cacheDev.LoadWordRaw(off)
		if err != nil {
			return 0, err
		}
		if s&1 == 0 {
			ok, err := io.e.cacheDev.CompareAndSwapWordRaw(off, s, s+1)
			if err != nil {
				return 0, err
			}
			if ok {
				return s + 1, nil
			}
		}
		runtime.Gosched()
	}
}

// releaseSeq completes a writer critical section: the word moves from
// odd to the next even value, so any overlapped lock-free read fails
// its re-check and retries.
func (io localCopyIO) releaseSeq(loc cache.Location, odd uint64) error {
	return io.e.cacheDev.StoreWordRaw(loc.Off+cache.CopySeqOff, odd+1)
}

// InstallCopy writes header + data into the local arena under the
// copy's seqlock. The slot may be a reused buffer a stale-located
// reader is still optimistically reading: the odd seq (or, after
// release, the changed generation word) forces that reader to retry
// and miss. The seq word itself is owned by the protocol — the
// payload's seq field is skipped, not copied.
func (io localCopyIO) InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error) {
	odd, err := io.acquireSeq(loc)
	if err != nil {
		return at, err
	}
	// Gen word first, then data; both are atomic word stores under the
	// device write lock, so the mutex-guarded read path stays torn-free.
	if err := io.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyGenOff, payload[:8]); err != nil {
		return at, err
	}
	if err := io.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyHeaderBytes, payload[cache.CopyHeaderBytes:]); err != nil {
		return at, err
	}
	return at, io.releaseSeq(loc, odd)
}

// WriteCopy updates the copy's data area in the local arena under the
// copy's seqlock, so lock-free readers detect the overlap and retry.
func (io localCopyIO) WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	odd, err := io.acquireSeq(loc)
	if err != nil {
		return at, err
	}
	if err := io.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyHeaderBytes+delta, data); err != nil {
		return at, err
	}
	return at, io.releaseSeq(loc, odd)
}

// ReadCopy serves buf from the copy's data area with the engine's
// lock-free seqlock read, validating the location's generation against
// the arena header. A generation mismatch — the slot was released or
// reused since loc was minted — comes back as ErrStaleCopy.
func (io localCopyIO) ReadCopy(at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, error) {
	if delta < 0 || delta+int64(len(buf)) > loc.Size {
		return at, errors.New("engine: copy read out of bounds")
	}
	end, ok := io.e.seqlockReadCopy(at, loc, delta, buf)
	if !ok {
		return at, ErrStaleCopy
	}
	return end, nil
}

// Release frees the copy's arena space, zeroing the generation header
// first (under the seqlock, so lock-free readers retry rather than
// observe the transition) — stamp zero is never minted, so any location
// still pointing at the slot fails its generation check from here on,
// whether or not the slot is reused.
func (io localCopyIO) Release(loc cache.Location) {
	var zero [8]byte
	if odd, err := io.acquireSeq(loc); err == nil {
		_ = io.e.cacheDev.WriteWordsRaw(loc.Off+cache.CopyGenOff, zero[:])
		_ = io.releaseSeq(loc, odd)
	}
	if err := io.e.bufp.Release(loc.Off); err != nil {
		// A release failure means the location was already released — a
		// bookkeeping bug upstream, never fatal to the pool, but silent
		// discard hid real double-release bugs: count every one and log
		// the first so the telemetry points at the stack that matters.
		io.e.releaseErrs.Inc()
		io.e.releaseErrOnce.Do(func() {
			log.Printf("engine %s: copy release failed (counted in gengar_cache_release_errors_total from now on): %v", io.e.name, err)
		})
	}
}

// LocalPlacer places promoted copies in the engine's own DRAM arena —
// the single-server strategy of the TCP mount. Generation stamps are
// salted with the engine's pool ID so they stay cluster-unique even
// when a peer placer later ships copies (and their stamps) off-box.
type LocalPlacer struct {
	localCopyIO
	gen atomic.Uint64
}

// NewLocalPlacer returns a placer over the engine's own buffer arena.
func NewLocalPlacer(e *Engine) *LocalPlacer {
	return &LocalPlacer{localCopyIO: localCopyIO{e: e}}
}

// Stamp mints a fresh cluster-unique generation: the engine's pool ID
// in the high bits, a monotone local counter below. Never zero.
func (p *LocalPlacer) Stamp() uint64 {
	return uint64(p.e.id)<<genSaltShift | (p.gen.Add(1) & genCtrMask)
}

// PlaceCopy reserves local arena space and stamps a fresh generation.
func (p *LocalPlacer) PlaceCopy(size int64) (cache.Location, error) {
	off, err := p.e.bufp.Place(size + cache.CopyHeaderBytes)
	if err != nil {
		return cache.Location{}, err
	}
	return cache.Location{
		Node: p.e.name,
		Off:  off,
		Size: size,
		Gen:  p.Stamp(),
	}, nil
}

// CopyBudget reports zero: a purely local placer budgets exactly the
// engine's configured arena, which is the engine's default.
func (p *LocalPlacer) CopyBudget() int64 { return 0 }
