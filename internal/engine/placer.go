package engine

import (
	"sync/atomic"

	"gengar/internal/cache"
	"gengar/internal/simnet"
)

// Placer is the deployment's promotion-placement strategy: where a hot
// object's DRAM copy lives and how bytes reach it. The simulated mount
// places cluster-wide (any server's arena, written over mesh queue
// pairs); the TCP mount places into the engine's own arena. Locations
// returned by PlaceCopy must carry a fresh nonzero generation stamp.
type Placer interface {
	// PlaceCopy reserves arena space for a copy of size data bytes (the
	// generation header is added by the placer) and returns its stamped
	// location.
	PlaceCopy(size int64) (cache.Location, error)
	// InstallCopy writes a complete copy — generation header plus object
	// data — into freshly placed buffer space.
	InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error)
	// WriteCopy writes data into the copy's data area at the given delta
	// past the generation header.
	WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error)
	// Release frees the buffer space behind a demoted copy.
	Release(loc cache.Location)
}

// LocalPlacer places promoted copies in the engine's own DRAM arena —
// the single-server strategy of the TCP mount, where there is no mesh to
// spill over. Generation stamps are engine-local; uniqueness within one
// engine is all the generation check needs when copies never leave it.
type LocalPlacer struct {
	e   *Engine
	gen atomic.Uint64
}

// NewLocalPlacer returns a placer over the engine's own buffer arena.
func NewLocalPlacer(e *Engine) *LocalPlacer { return &LocalPlacer{e: e} }

// PlaceCopy reserves local arena space and stamps a fresh generation.
func (p *LocalPlacer) PlaceCopy(size int64) (cache.Location, error) {
	off, err := p.e.bufp.Place(size + cache.CopyHeaderBytes)
	if err != nil {
		return cache.Location{}, err
	}
	return cache.Location{
		Node: p.e.name,
		Off:  off,
		Size: size,
		Gen:  p.gen.Add(1),
	}, nil
}

// InstallCopy writes header + data into the local arena.
func (p *LocalPlacer) InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error) {
	return p.e.cacheDev.Write(at, loc.Off, payload)
}

// WriteCopy updates the copy's data area in the local arena.
func (p *LocalPlacer) WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	return p.e.cacheDev.Write(at, loc.Off+cache.CopyHeaderBytes+delta, data)
}

// Release frees the copy's arena space.
func (p *LocalPlacer) Release(loc cache.Location) {
	// A release failure means the location was already released — a
	// bookkeeping bug upstream, but never fatal to the pool.
	_ = p.e.bufp.Release(loc.Off)
}
