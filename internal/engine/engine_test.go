package engine

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gengar/internal/config"
	"gengar/internal/hotness"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := config.Default()
	cfg.Servers = 1
	eng, err := New(Config{ID: 1, Name: "eng-test", Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// planBarrier waits until every plan submitted to the flusher so far has
// executed (Submit preserves order).
func planBarrier(t *testing.T, eng *Engine) {
	t.Helper()
	done := make(chan struct{})
	if err := eng.Flusher().Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestEngineMallocFree(t *testing.T) {
	eng := newTestEngine(t)
	if _, err := eng.Malloc(0); err == nil {
		t.Fatal("zero-byte malloc accepted")
	}
	a, err := eng.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a == region.NilGAddr || a.Server() != 1 {
		t.Fatalf("bad address %v", a)
	}
	st := eng.Stats()
	if st.Objects != 1 || st.Mallocs != 1 {
		t.Fatalf("after malloc: %+v", st)
	}
	if err := eng.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := eng.Free(a); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("double free: %v", err)
	}
	st = eng.Stats()
	if st.Objects != 0 || st.Frees != 1 {
		t.Fatalf("after free: %+v", st)
	}
}

func TestEngineObjectSpanAndAdopt(t *testing.T) {
	eng := newTestEngine(t)
	a, err := eng.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	base, size, ok := eng.ObjectSpan(region.MustGAddr(1, a.Offset()+100), 8)
	if !ok || base != a || size < 1024 {
		t.Fatalf("span: %v %d %v", base, size, ok)
	}
	if _, _, ok := eng.ObjectSpan(region.MustGAddr(1, 1<<30), 8); ok {
		t.Fatal("span of unallocated range")
	}

	// AdoptObject registers a reserved range as live (the restore path).
	if err := eng.Pool().Reserve(1<<20, 2048); err != nil {
		t.Fatal(err)
	}
	if err := eng.AdoptObject(1<<20, 2048); err != nil {
		t.Fatal(err)
	}
	base, _, ok = eng.ObjectSpan(region.MustGAddr(1, 1<<20), 2048)
	if !ok || base.Offset() != 1<<20 {
		t.Fatalf("adopted span: %v %v", base, ok)
	}
}

func TestEngineReadWriteNVM(t *testing.T) {
	eng := newTestEngine(t)
	a, err := eng.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("nv"), 64)
	if _, err := eng.WriteNVM(0, a, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	_, src, err := eng.ReadAt(0, a, buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Hit() {
		t.Fatal("unpromoted read reported a cache hit")
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read back wrong bytes")
	}
	if st := eng.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestEnginePromotionServesCacheReads(t *testing.T) {
	eng := newTestEngine(t)
	eng.SetPlacer(NewLocalPlacer(eng))
	a, err := eng.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if _, err := eng.WriteNVM(0, a, data); err != nil {
		t.Fatal(err)
	}

	// A heavy digest promotes the object on the first plan.
	epoch0 := eng.Remap().Epoch()
	eng.Digest(simnet.Time(time.Millisecond), []hotness.Entry{{Addr: a, Reads: 100}})
	planBarrier(t, eng)

	st := eng.Stats()
	if st.Promoted != 1 || st.Promotions != 1 {
		t.Fatalf("after digest: %+v", st)
	}
	if eng.Remap().Epoch() == epoch0 {
		t.Fatal("remap epoch did not advance on promotion")
	}

	buf := make([]byte, 128)
	_, src, err := eng.ReadAt(0, region.MustGAddr(1, a.Offset()+64), buf)
	if err != nil {
		t.Fatal(err)
	}
	if src != ReadHitLocal {
		t.Fatalf("promoted read missed the cache: src=%v", src)
	}
	if !bytes.Equal(buf, data[64:64+128]) {
		t.Fatal("cache read returned wrong bytes")
	}
	if st := eng.Stats(); st.Hits != 1 {
		t.Fatalf("hit counter: %+v", st)
	}

	// A direct NVM write refreshes the copy: the next cache read sees it.
	patch := bytes.Repeat([]byte{0xCD}, 128)
	if _, err := eng.WriteNVM(0, region.MustGAddr(1, a.Offset()+64), patch); err != nil {
		t.Fatal(err)
	}
	if _, src, err = eng.ReadAt(0, region.MustGAddr(1, a.Offset()+64), buf); err != nil || !src.Hit() {
		t.Fatalf("read after write-through: src=%v err=%v", src, err)
	}
	if !bytes.Equal(buf, patch) {
		t.Fatal("write-through did not refresh the copy")
	}

	// Freeing the object demotes the copy and releases its arena space.
	if err := eng.Free(a); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Promoted != 0 || st.Demotions != 1 || st.BufferUsed != 0 {
		t.Fatalf("after free: %+v", st)
	}
}

func TestEngineNoPlacerNeverPromotes(t *testing.T) {
	eng := newTestEngine(t)
	a, err := eng.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	eng.Digest(simnet.Time(time.Millisecond), []hotness.Entry{{Addr: a, Reads: 100}})
	planBarrier(t, eng)
	if st := eng.Stats(); st.Promoted != 0 || st.Promotions != 0 {
		t.Fatalf("promotion without a placer: %+v", st)
	}
}

func TestEngineRingLeases(t *testing.T) {
	eng := newTestEngine(t)
	slots, slotSize := eng.RingGeometry()
	ringSize := int64(slots) * int64(slotSize)
	want := eng.RingDev().Size() / ringSize

	var bases []int64
	for {
		base, err := eng.OpenRing()
		if err != nil {
			if !errors.Is(err, ErrRingSpaceExhausted) {
				t.Fatal(err)
			}
			break
		}
		bases = append(bases, base)
	}
	if int64(len(bases)) != want {
		t.Fatalf("leased %d rings, device fits %d", len(bases), want)
	}

	// Returned rings are reused.
	if err := eng.CloseRing(bases[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseRing(bases[0]); err == nil {
		t.Fatal("double close accepted")
	}
	if err := eng.CloseRing(ringSize / 2); err == nil {
		t.Fatal("misaligned close accepted")
	}
	base, err := eng.OpenRing()
	if err != nil {
		t.Fatal(err)
	}
	if base != bases[0] {
		t.Fatalf("reopened ring at %d, want recycled %d", base, bases[0])
	}
}

func TestEngineLeaseReleaseBumpsVersion(t *testing.T) {
	eng := newTestEngine(t)
	a, err := eng.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	v0 := eng.Version(a)
	if err := eng.Leases().LockExclusive(9, a, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if eng.Version(a) != v0 {
		t.Fatal("version bumped before release")
	}
	if err := eng.Leases().UnlockExclusive(9, a); err != nil {
		t.Fatal(err)
	}
	if got := eng.Version(a); got != v0+1 {
		t.Fatalf("version after exclusive release: %d, want %d", got, v0+1)
	}
	// Shared leases never bump.
	if err := eng.Leases().LockShared(9, a, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := eng.Leases().UnlockShared(9, a); err != nil {
		t.Fatal(err)
	}
	if got := eng.Version(a); got != v0+1 {
		t.Fatalf("version after shared release: %d", got)
	}
}

func TestEngineClockless(t *testing.T) {
	eng := newTestEngine(t)
	if eng.Now() != 0 {
		t.Fatal("clockless engine reported nonzero Now")
	}
}

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock()
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond)
	t1 := c.Now()
	if t1 <= t0 {
		t.Fatalf("wall clock did not advance: %v -> %v", t0, t1)
	}
}
