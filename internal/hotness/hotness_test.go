package hotness

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"gengar/internal/region"
)

func ga(off int64) region.GAddr { return region.MustGAddr(1, off) }

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.RecordRead(ga(64))
	r.RecordRead(ga(64))
	r.RecordWrite(ga(64))
	r.RecordWrite(ga(128))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	d := r.Drain()
	if len(d) != 2 {
		t.Fatalf("Drain len = %d", len(d))
	}
	// ga(64): 2 reads + 1 write => weight 5; ga(128): weight 1.
	if d[0].Addr != ga(64) || d[0].Reads != 2 || d[0].Writes != 1 || d[0].Weight() != 5 {
		t.Fatalf("first entry: %+v", d[0])
	}
	if d[1].Addr != ga(128) || d[1].Weight() != 1 {
		t.Fatalf("second entry: %+v", d[1])
	}
	// Drain resets.
	if r.Len() != 0 || len(r.Drain()) != 0 {
		t.Fatal("Drain did not reset")
	}
}

func TestRecorderDeterministicOrder(t *testing.T) {
	r := NewRecorder()
	// Equal weights sort by address.
	r.RecordWrite(ga(300))
	r.RecordWrite(ga(100))
	r.RecordWrite(ga(200))
	d := r.Drain()
	if d[0].Addr != ga(100) || d[1].Addr != ga(200) || d[2].Addr != ga(300) {
		t.Fatalf("tie-break order: %v %v %v", d[0].Addr, d[1].Addr, d[2].Addr)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.RecordRead(ga(64))
			}
		}()
	}
	wg.Wait()
	d := r.Drain()
	if len(d) != 1 || d[0].Reads != 4000 {
		t.Fatalf("concurrent reads lost: %+v", d)
	}
}

func TestSpaceSavingExactWhenSmall(t *testing.T) {
	s := NewSpaceSaving(10)
	for i := 0; i < 5; i++ {
		s.Add(ga(int64(i)*64), uint64(i+1))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Addr != ga(4*64) || top[0].Count != 5 || top[0].Err != 0 {
		t.Fatalf("Top: %+v", top)
	}
	if s.Estimate(ga(0)) != 1 || s.Estimate(ga(999*64)) != 0 {
		t.Fatal("Estimate wrong")
	}
	if s.Total() != 1+2+3+4+5 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestSpaceSavingZeroWeightIgnored(t *testing.T) {
	s := NewSpaceSaving(4)
	s.Add(ga(0), 0)
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("zero weight recorded")
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Add(ga(64), 10)
	s.Add(ga(128), 5)
	s.Add(ga(192), 1) // evicts ga(128) (min), inherits count 5
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Estimate(ga(128)) != 0 {
		t.Fatal("evicted key still present")
	}
	top := s.Top(-1)
	if top[1].Addr != ga(192) || top[1].Count != 6 || top[1].Err != 5 {
		t.Fatalf("stolen counter: %+v", top[1])
	}
}

func TestSpaceSavingHeavyHitterGuarantee(t *testing.T) {
	// Property: any key with true frequency > total/k survives in the
	// sketch, for random streams.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.2, 1, 1023)
		const k = 32
		s := NewSpaceSaving(k)
		exact := make(map[region.GAddr]uint64)
		var total uint64
		for i := 0; i < 5000; i++ {
			// Zipf: low offsets much more frequent.
			obj := int64(zipf.Uint64())
			addr := ga(obj * 64)
			s.Add(addr, 1)
			exact[addr]++
			total++
		}
		for addr, cnt := range exact {
			if cnt > total/k {
				got := s.Estimate(addr)
				if got == 0 || got < cnt {
					return false // must be present and never underestimate
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingDecay(t *testing.T) {
	s := NewSpaceSaving(8)
	s.Add(ga(64), 8)
	s.Add(ga(128), 1)
	s.Decay()
	if s.Estimate(ga(64)) != 4 {
		t.Fatalf("decayed count = %d", s.Estimate(ga(64)))
	}
	if s.Len() != 1 {
		t.Fatalf("count-1 entry not dropped: Len = %d", s.Len())
	}
	if s.Total() != 4 {
		t.Fatalf("Total after decay = %d", s.Total())
	}
}

func TestNewSpaceSavingClampsK(t *testing.T) {
	s := NewSpaceSaving(0)
	s.Add(ga(64), 1)
	s.Add(ga(128), 1)
	if s.Len() != 1 {
		t.Fatalf("k=0 sketch Len = %d, want 1", s.Len())
	}
}

func sizeConst(n int64) func(region.GAddr) int64 {
	return func(region.GAddr) int64 { return n }
}

func TestPolicyPlanBudget(t *testing.T) {
	s := NewSpaceSaving(16)
	for i := int64(0); i < 8; i++ {
		s.Add(ga(i*64), uint64(100-i)) // ga(0) hottest
	}
	p := Policy{BudgetBytes: 3 * 64, MinWeight: 1}
	promote, demote := p.Plan(s, sizeConst(64), nil)
	if len(promote) != 3 || len(demote) != 0 {
		t.Fatalf("promote=%v demote=%v", promote, demote)
	}
	want := map[region.GAddr]bool{ga(0): true, ga(64): true, ga(128): true}
	for _, a := range promote {
		if !want[a] {
			t.Fatalf("unexpected promotion %v", a)
		}
	}
}

func TestPolicyPlanStable(t *testing.T) {
	// With everything already promoted and unchanged hotness, Plan is a
	// no-op.
	s := NewSpaceSaving(16)
	s.Add(ga(0), 50)
	s.Add(ga(64), 40)
	promoted := map[region.GAddr]bool{ga(0): true, ga(64): true}
	p := DefaultPolicy(128)
	promote, demote := p.Plan(s, sizeConst(64), promoted)
	if len(promote) != 0 || len(demote) != 0 {
		t.Fatalf("stable plan changed: +%v -%v", promote, demote)
	}
}

func TestPolicyHysteresisProtectsIncumbent(t *testing.T) {
	s := NewSpaceSaving(16)
	s.Add(ga(0), 100)  // incumbent
	s.Add(ga(64), 110) // challenger, only 10% hotter
	promoted := map[region.GAddr]bool{ga(0): true}
	p := Policy{BudgetBytes: 64, MinWeight: 1, Hysteresis: 1.25}
	promote, demote := p.Plan(s, sizeConst(64), promoted)
	if len(promote) != 0 || len(demote) != 0 {
		t.Fatalf("hysteresis failed: +%v -%v", promote, demote)
	}
	// A 50% hotter challenger does displace.
	s.Add(ga(64), 40) // now 150
	promote, demote = p.Plan(s, sizeConst(64), promoted)
	if len(promote) != 1 || promote[0] != ga(64) || len(demote) != 1 || demote[0] != ga(0) {
		t.Fatalf("displacement failed: +%v -%v", promote, demote)
	}
}

func TestPolicyMinWeightFilters(t *testing.T) {
	s := NewSpaceSaving(16)
	s.Add(ga(0), 2)
	p := Policy{BudgetBytes: 1 << 20, MinWeight: 4}
	promote, _ := p.Plan(s, sizeConst(64), nil)
	if len(promote) != 0 {
		t.Fatalf("cold object promoted: %v", promote)
	}
}

func TestPolicyDemotesVanishedObjects(t *testing.T) {
	// A promoted object that was freed (sizeOf <= 0) must be demoted.
	s := NewSpaceSaving(16)
	s.Add(ga(0), 100)
	promoted := map[region.GAddr]bool{ga(0): true}
	p := Policy{BudgetBytes: 1 << 20, MinWeight: 1}
	promote, demote := p.Plan(s, sizeConst(-1), promoted)
	if len(promote) != 0 || len(demote) != 1 || demote[0] != ga(0) {
		t.Fatalf("vanished object: +%v -%v", promote, demote)
	}
}

func TestPolicySkipsOversizedKeepsPacking(t *testing.T) {
	// A huge hot object that exceeds remaining budget is skipped, and a
	// smaller colder one still fits.
	s := NewSpaceSaving(16)
	s.Add(ga(0), 100)   // size 1024 (too big)
	s.Add(ga(4096), 50) // size 64
	sizes := map[region.GAddr]int64{ga(0): 1024, ga(4096): 64}
	p := Policy{BudgetBytes: 128, MinWeight: 1}
	promote, _ := p.Plan(s, func(a region.GAddr) int64 { return sizes[a] }, nil)
	if len(promote) != 1 || promote[0] != ga(4096) {
		t.Fatalf("packing: %v", promote)
	}
}

func TestPolicyPlanDeterministicProperty(t *testing.T) {
	// Property: Plan is deterministic — same inputs, same outputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() *SpaceSaving {
			r := rand.New(rand.NewSource(seed))
			s := NewSpaceSaving(16)
			for i := 0; i < 100; i++ {
				s.Add(ga(int64(r.Intn(32))*64), uint64(r.Intn(10)+1))
			}
			return s
		}
		promoted := map[region.GAddr]bool{ga(int64(rng.Intn(32)) * 64): true}
		p := DefaultPolicy(512)
		p1, d1 := p.Plan(build(), sizeConst(64), promoted)
		p2, d2 := p.Plan(build(), sizeConst(64), promoted)
		if len(p1) != len(p2) || len(d1) != len(d2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
