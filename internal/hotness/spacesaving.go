package hotness

import (
	"container/heap"
	"sort"

	"gengar/internal/region"
)

// Counted is one sketch entry: an object, its estimated access weight,
// and the maximum possible overestimation error inherited from evicted
// entries.
type Counted struct {
	Addr  region.GAddr
	Count uint64
	Err   uint64
}

// SpaceSaving is the Metwally et al. top-k frequency sketch: it tracks at
// most k counters, and an arriving key that has no counter steals the
// minimum counter, inheriting its count as error. Guarantees: every key
// with true frequency > N/k is present, and counts overestimate by at
// most the recorded error. It is not safe for concurrent use; the server
// serializes digest merges.
type SpaceSaving struct {
	k     int
	items map[region.GAddr]*ssItem
	h     ssHeap
	total uint64
}

type ssItem struct {
	addr  region.GAddr
	count uint64
	err   uint64
	idx   int // heap index
}

type ssHeap []*ssItem

func (h ssHeap) Len() int            { return len(h) }
func (h ssHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *ssHeap) Push(x interface{}) { it := x.(*ssItem); it.idx = len(*h); *h = append(*h, it) }
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// NewSpaceSaving returns a sketch holding at most k counters; k must be
// positive.
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		k = 1
	}
	return &SpaceSaving{
		k:     k,
		items: make(map[region.GAddr]*ssItem, k),
	}
}

// Add folds weight observations of addr into the sketch.
func (s *SpaceSaving) Add(addr region.GAddr, weight uint64) {
	if weight == 0 {
		return
	}
	s.total += weight
	if it, ok := s.items[addr]; ok {
		it.count += weight
		heap.Fix(&s.h, it.idx)
		return
	}
	if len(s.items) < s.k {
		it := &ssItem{addr: addr, count: weight}
		s.items[addr] = it
		heap.Push(&s.h, it)
		return
	}
	// Steal the minimum counter.
	min := s.h[0]
	delete(s.items, min.addr)
	min.err = min.count
	min.count += weight
	min.addr = addr
	s.items[addr] = min
	heap.Fix(&s.h, 0)
}

// Len returns the number of counters currently held.
func (s *SpaceSaving) Len() int { return len(s.items) }

// Total returns the total weight added since construction (decayed along
// with the counters by Decay).
func (s *SpaceSaving) Total() uint64 { return s.total }

// Estimate returns the sketched weight of addr (0 if untracked).
func (s *SpaceSaving) Estimate(addr region.GAddr) uint64 {
	if it, ok := s.items[addr]; ok {
		return it.count
	}
	return 0
}

// Top returns up to n entries sorted by descending count (ties by
// address for determinism).
func (s *SpaceSaving) Top(n int) []Counted {
	out := make([]Counted, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, Counted{Addr: it.addr, Count: it.count, Err: it.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Decay halves every counter (dropping entries that reach zero), aging
// the sketch so that stale hot sets fade across epochs.
func (s *SpaceSaving) Decay() {
	for addr, it := range s.items {
		it.count /= 2
		it.err /= 2
		if it.count == 0 {
			heap.Remove(&s.h, it.idx)
			delete(s.items, addr)
		}
	}
	heap.Init(&s.h)
	s.total /= 2
}
