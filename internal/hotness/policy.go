package hotness

import (
	"sort"

	"gengar/internal/region"
)

// Policy decides, at each epoch boundary, which objects move between the
// NVM pool and the distributed DRAM buffers.
type Policy struct {
	// BudgetBytes is the total DRAM buffer capacity available for
	// promoted objects.
	BudgetBytes int64
	// MinWeight is the minimum sketched weight for an object to be
	// considered hot at all; filters one-touch objects.
	MinWeight uint64
	// Hysteresis boosts incumbents' weights by this factor when ranking,
	// so a challenger must be clearly hotter to displace a promoted
	// object. Values <= 1 disable hysteresis. A typical value is 1.25.
	Hysteresis float64
	// MaxChurn caps the promotions and the demotions per plan. Near the
	// budget boundary, zipfian-tail objects have statistically
	// indistinguishable weights and would otherwise swap places every
	// epoch, paying copy installs and epoch bumps for no benefit.
	// Zero means unlimited.
	MaxChurn int
}

// DefaultPolicy returns the promotion policy used by Gengar servers
// unless overridden: displacement requires a 25 % hotter challenger and
// at least 4 recorded accesses.
func DefaultPolicy(budgetBytes int64) Policy {
	return Policy{BudgetBytes: budgetBytes, MinWeight: 4, Hysteresis: 1.25}
}

// Plan computes the promotions and demotions that transform the current
// promoted set into the budgeted hottest set from the sketch.
//
// sizeOf must return the object's size in bytes, or a non-positive value
// if the object no longer exists (it is then skipped for promotion, and
// demoted if currently promoted). The returned slices are disjoint and
// deterministic for a given sketch state.
func (p Policy) Plan(sketch *SpaceSaving, sizeOf func(region.GAddr) int64, promoted map[region.GAddr]bool) (promote, demote []region.GAddr) {
	type cand struct {
		addr region.GAddr
		rank float64
		size int64
	}
	hys := p.Hysteresis
	if hys < 1 {
		hys = 1
	}

	// Rank every sketch entry, boosting incumbents.
	var cands []cand
	for _, c := range sketch.Top(-1) {
		if c.Count < p.MinWeight {
			continue
		}
		size := sizeOf(c.Addr)
		if size <= 0 {
			continue
		}
		rank := float64(c.Count)
		if promoted[c.Addr] {
			rank *= hys
		}
		cands = append(cands, cand{addr: c.Addr, rank: rank, size: size})
	}
	// Re-sort by boosted rank, keeping the deterministic address
	// tie-break from Top.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rank != cands[j].rank {
			return cands[i].rank > cands[j].rank
		}
		return cands[i].addr < cands[j].addr
	})

	target := make(map[region.GAddr]bool, len(cands))
	var used int64
	for _, c := range cands {
		if used+c.size > p.BudgetBytes {
			continue // try smaller objects further down
		}
		target[c.addr] = true
		used += c.size
	}

	for _, c := range cands {
		if target[c.addr] && !promoted[c.addr] {
			promote = append(promote, c.addr)
		}
	}
	for addr := range promoted {
		if !target[addr] {
			demote = append(demote, addr)
		}
	}
	// Demote coldest-first so a capped plan sheds the least valuable
	// copies; ties break by address for determinism.
	sort.Slice(demote, func(i, j int) bool {
		wi, wj := sketch.Estimate(demote[i]), sketch.Estimate(demote[j])
		if wi != wj {
			return wi < wj
		}
		return demote[i] < demote[j]
	})
	if p.MaxChurn > 0 {
		if len(promote) > p.MaxChurn {
			promote = promote[:p.MaxChurn]
		}
		if len(demote) > p.MaxChurn {
			demote = demote[:p.MaxChurn]
		}
	}
	return promote, demote
}
