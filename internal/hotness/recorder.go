// Package hotness implements Gengar's frequently-accessed-data
// identification. One-sided RDMA verbs bypass the server CPU, so the
// server cannot observe the access stream directly; what Gengar exploits
// is that the *initiator* of every verb knows its semantics — verb type
// (READ/WRITE), remote address and length. Each client therefore records
// a per-object access digest off the critical path and reports it to the
// object's home server at epoch boundaries; the server aggregates digests
// in a Space-Saving top-k sketch and plans promotions into the
// distributed DRAM buffers and demotions back to NVM.
package hotness

import (
	"sort"
	"sync"

	"gengar/internal/region"
)

// Entry is one object's access counts within an epoch.
type Entry struct {
	Addr   region.GAddr
	Reads  uint64
	Writes uint64
}

// Weight is the sketch weight of an entry. Reads count double: reads are
// what a DRAM cache accelerates most (writes are absorbed by the proxy),
// so the promotion policy favors read-hot objects.
func (e Entry) Weight() uint64 { return 2*e.Reads + e.Writes }

// Recorder accumulates verb semantics at a client between digest
// reports. It is safe for concurrent use and cheap on the data path
// (one map update per access). The zero value is not usable; construct
// with NewRecorder.
type Recorder struct {
	mu sync.Mutex
	m  map[region.GAddr]*Entry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{m: make(map[region.GAddr]*Entry)}
}

// RecordRead notes a one-sided READ of the object at addr.
func (r *Recorder) RecordRead(addr region.GAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[addr]
	if e == nil {
		e = &Entry{Addr: addr}
		r.m[addr] = e
	}
	e.Reads++
}

// RecordWrite notes a WRITE of the object at addr.
func (r *Recorder) RecordWrite(addr region.GAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[addr]
	if e == nil {
		e = &Entry{Addr: addr}
		r.m[addr] = e
	}
	e.Writes++
}

// Len returns the number of distinct objects recorded this epoch.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Drain returns the accumulated digest sorted by descending weight and
// resets the recorder for the next epoch.
func (r *Recorder) Drain() []Entry {
	r.mu.Lock()
	m := r.m
	r.m = make(map[region.GAddr]*Entry)
	r.mu.Unlock()

	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight() != out[j].Weight() {
			return out[i].Weight() > out[j].Weight()
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Obs is one staged raw access: the per-op record a serving thread
// appends to its session-local buffer instead of updating a recorder
// map (and its lock) on every operation. Buffers are folded into digest
// entries at digest boundaries via AggregateObs.
type Obs struct {
	Addr  region.GAddr
	Write bool
}

// AggregateObs folds a staged observation buffer into per-object digest
// entries, preserving first-seen order. It runs once per digest, off
// the per-op path.
func AggregateObs(obs []Obs) []Entry {
	idx := make(map[region.GAddr]int, len(obs))
	out := make([]Entry, 0, len(obs))
	for _, o := range obs {
		i, ok := idx[o.Addr]
		if !ok {
			i = len(out)
			out = append(out, Entry{Addr: o.Addr})
			idx[o.Addr] = i
		}
		if o.Write {
			out[i].Writes++
		} else {
			out[i].Reads++
		}
	}
	return out
}
