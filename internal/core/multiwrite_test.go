package core

import (
	"bytes"
	"errors"
	"testing"

	"gengar/internal/config"
	"gengar/internal/region"
)

func TestWriteMulti(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	const k = 6
	addrs := make([]region.GAddr, k)
	bufs := make([][]byte, k)
	for i := range addrs {
		a, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, 128)
	}
	t0 := cl.Now()
	if err := cl.WriteMulti(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	batched := cl.Now().Sub(t0)
	got := make([]byte, 128)
	for i := range addrs {
		if err := cl.Read(addrs[i], got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Fatalf("entry %d wrong data after batched write", i)
		}
	}
	// Sequential baseline for the same writes costs much more.
	t1 := cl.Now()
	for i := range addrs {
		if err := cl.Write(addrs[i], bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sequential := cl.Now().Sub(t1)
	if sequential < 2*batched {
		t.Fatalf("batch %v not well below sequential %v", batched, sequential)
	}
	// Validation and edge cases.
	if err := cl.WriteMulti(addrs[:2], bufs[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := cl.WriteMulti(nil, nil); err != nil {
		t.Fatalf("empty multi-write: %v", err)
	}
	if err := cl.WriteMulti([]region.GAddr{region.MustGAddr(88, 64)}, bufs[:1]); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("unknown server: %v", err)
	}
	cl.Close()
	if err := cl.WriteMulti(addrs, bufs); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

func TestWriteMultiReadYourWrites(t *testing.T) {
	// A batched staged burst must be immediately visible to the client's
	// own reads, before any flush.
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	a, _ := cl.Malloc(64)
	b, _ := cl.Malloc(64)
	if err := cl.WriteMulti(
		[]region.GAddr{a, b},
		[][]byte{bytes.Repeat([]byte{1}, 64), bytes.Repeat([]byte{2}, 64)},
	); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := cl.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatal("read missed own batched staged write to a")
	}
	if err := cl.Read(b, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatal("read missed own batched staged write to b")
	}
}

func TestWriteMultiChunksLargeWrites(t *testing.T) {
	// Entries larger than a ring slot chunk through the ring like Write.
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	size := int64(3*cl.maxStg + 17)
	a, err := cl.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := cl.WriteMulti([]region.GAddr{a}, [][]byte{data}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := cl.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked batched write corrupted data")
	}
}

func TestWriteMultiDirectCoalescesFences(t *testing.T) {
	// Direct path (no proxy, no cache): one chain to one server must pay
	// one persist fence, not k.
	cfg := testConfig()
	cfg.Servers = 1
	cfg.Features = config.Features{}
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	const k = 8
	addrs := make([]region.GAddr, k)
	bufs := make([][]byte, k)
	for i := range addrs {
		a, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, 128)
	}
	if err := cl.WriteMulti(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	if got := cl.coalescedFences.Load(); got != k-1 {
		t.Fatalf("coalesced fences = %d, want %d", got, k-1)
	}
	got := make([]byte, 128)
	for i := range addrs {
		if err := cl.Read(addrs[i], got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Fatalf("entry %d wrong data after direct batched write", i)
		}
	}
}

func TestWriteMultiDirectCacheStaysCoherent(t *testing.T) {
	// Ablation: cache on, proxy off. A batched direct write must refresh
	// promoted copies via one batched write-through RPC per chain.
	cfg := testConfig()
	cfg.Servers = 1
	cfg.Features = config.Features{Cache: true, Proxy: false}
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	hot, _ := cl.Malloc(512)
	cold, _ := cl.Malloc(512)
	if err := cl.Write(hot, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(cold, bytes.Repeat([]byte{2}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(hot, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, hot)
	settle(t, c, cl, hot)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted == 0 {
		t.Skip("promotion did not land")
	}
	rpcsBefore := cl.coalescedRPCs.Load()
	if err := cl.WriteMulti(
		[]region.GAddr{hot, cold},
		[][]byte{bytes.Repeat([]byte{9}, 512), bytes.Repeat([]byte{8}, 512)},
	); err != nil {
		t.Fatal(err)
	}
	if got := cl.coalescedRPCs.Load(); got != rpcsBefore+1 {
		t.Fatalf("coalesced write-through RPCs = %d, want %d", got, rpcsBefore+1)
	}
	hitsBefore := cl.Stats().CacheHits
	if err := cl.Read(hot, buf); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().CacheHits == hitsBefore {
		t.Skip("read not served by the copy; coherence path untested")
	}
	for i := range buf {
		if buf[i] != 9 {
			t.Fatalf("stale cached byte at %d after batched direct write", i)
		}
	}
}

func TestReadMultiStaleGenerationBatchedRetry(t *testing.T) {
	// Same displacement dance as TestStaleGenerationFallback, but the
	// stale read goes through ReadMulti: the follow-up fetch must take the
	// batched per-node retry chain and still return A's bytes.
	cfg := testConfig()
	cfg.Servers = 1
	cfg.DRAMBufferBytes = 1 << 10 // fits one 512B copy
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")

	a, _ := cl.Malloc(512)
	b, _ := cl.Malloc(512)
	if err := cl.Write(a, bytes.Repeat([]byte{'A'}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(b, bytes.Repeat([]byte{'B'}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, a)
	settle(t, c, cl, a)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted != 1 {
		t.Skipf("promotion did not land (promoted=%d)", srv.Stats().Promoted)
	}

	// Second client hammers B far harder so the planner displaces A.
	cl2 := connect(t, c, "u2")
	for i := 0; i < 256; i++ {
		if err := cl2.Read(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl2, b)
	settle(t, c, cl2, b)

	// cl's view still maps A; the slot now holds B's copy. Both entries
	// of the vectored read hit the stale copy and retry in one chain.
	staleBefore := cl.staleGen.Load()
	bufs := [][]byte{make([]byte, 512), make([]byte, 512)}
	if err := cl.ReadMulti([]region.GAddr{a, a}, bufs); err != nil {
		t.Fatal(err)
	}
	if got := cl.staleGen.Load(); got < staleBefore+2 {
		t.Skipf("stale path not taken (stale retries %d -> %d)", staleBefore, got)
	}
	for e, bf := range bufs {
		for i := range bf {
			if bf[i] != 'A' {
				t.Fatalf("stale-view batched read entry %d returned %q at %d", e, bf[i], i)
			}
		}
	}
}
