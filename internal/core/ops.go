package core

import (
	"encoding/binary"
	"fmt"

	"gengar/internal/cache"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/server"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

// Flight-recorder path labels: how an op was served.
const (
	pathDRAMCopy  = "dram_copy"  // read redirected to a promoted DRAM copy
	pathNVM       = "nvm"        // read from the home NVM pool
	pathProxyRing = "proxy_ring" // write staged into the DRAM ring
	pathNVMDirect = "nvm_direct" // write straight to NVM (proxy off)
)

// Malloc allocates size bytes in the pool, choosing home servers
// round-robin, and returns the object's global address.
func (c *Client) Malloc(size int64) (region.GAddr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return region.NilGAddr, ErrClosed
	}
	servers := c.cluster.Registry().Servers()
	if len(servers) == 0 {
		return region.NilGAddr, ErrUnknownServer
	}
	id := servers[c.rr%len(servers)].ID()
	c.rr++
	return c.mallocOn(id, size)
}

// MallocOn allocates on a specific home server.
func (c *Client) MallocOn(serverID uint16, size int64) (region.GAddr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return region.NilGAddr, ErrClosed
	}
	return c.mallocOn(serverID, size)
}

func (c *Client) mallocOn(serverID uint16, size int64) (region.GAddr, error) {
	conn, ok := c.conns[serverID]
	if !ok {
		return region.NilGAddr, fmt.Errorf("%w: server %d", ErrUnknownServer, serverID)
	}
	var w rpc.Writer
	w.I64(size)
	resp, end, err := conn.ctl.Call(c.now, server.KindMalloc, w.Bytes())
	if err != nil {
		return region.NilGAddr, err
	}
	addr := region.GAddr(resp.U64())
	if err := resp.Err(); err != nil {
		return region.NilGAddr, err
	}
	c.now = simnet.MaxTime(c.now, end)
	c.flight.Record(telemetry.Event{
		TimeNanos: int64(c.now), Client: c.name, Op: "malloc",
		Addr: uint64(addr), Len: int(size),
	})
	return addr, nil
}

// Free returns an object to the pool. Any promoted copy is demoted.
func (c *Client) Free(addr region.GAddr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	// Writes to the object must land before the backing store is reused.
	if conn.writer != nil {
		if t := conn.writer.Drain(); t > c.now {
			c.now = t
		}
	}
	var w rpc.Writer
	w.U64(uint64(addr))
	_, end, err := conn.ctl.Call(c.now, server.KindFree, w.Bytes())
	if err != nil {
		return err
	}
	c.now = simnet.MaxTime(c.now, end)
	c.flight.Record(telemetry.Event{
		TimeNanos: int64(c.now), Client: c.name, Op: "free", Addr: uint64(addr),
	})
	return nil
}

// Read fills buf with the len(buf) bytes at addr (gread). Hot objects
// are served from their distributed DRAM copy with a single one-sided
// READ; everything else reads the home NVM pool directly. The client's
// own in-flight proxied writes are always visible (read-your-writes).
func (c *Client) Read(addr region.GAddr, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	start := c.now
	sp := c.tracer.StartAt("read", int64(start))
	end, path, err := c.readAt(conn, start, addr, buf, sp)
	if err != nil {
		sp.FinishAt(int64(start))
		return err
	}
	sp.FinishAt(int64(end))
	c.now = end
	c.reads.Inc()
	c.readLat.Record(end.Sub(start))
	c.flight.Record(telemetry.Event{
		TimeNanos: int64(end), Client: c.name, Op: "read",
		Addr: uint64(addr), Len: len(buf), Path: path,
		Hit: path == pathDRAMCopy, LatNanos: int64(end.Sub(start)),
	})
	conn.rec.RecordRead(addr)
	c.afterAccess(conn)
	return nil
}

// readAt performs the redirected read at the given simulated instant,
// reporting which path served it. sp (may be nil) gets the serving
// stage marked at the transfer's completion instant: cacheHit for a
// DRAM-copy read, nvmCopy for the home-NVM path.
func (c *Client) readAt(conn *serverConn, at simnet.Time, addr region.GAddr, buf []byte, sp *span.Span) (simnet.Time, string, error) {
	var end simnet.Time
	served := false

	if c.opts.Cache {
		if loc, base, ok := conn.view.Lookup(addr, int64(len(buf))); ok {
			end, served = c.readCopy(at, loc, base, addr, buf)
			if served {
				c.hits.Inc()
				sp.MarkAt(span.StageCacheHit, int64(end))
			} else {
				c.staleGen.Inc()
				at = end // retry against NVM after the failed attempt
			}
		}
	}
	path := pathDRAMCopy
	if !served {
		var err error
		end, err = conn.qp.Read(at, buf, rdma.RemoteAddr{Region: conn.nvm, Offset: addr.Offset()})
		if err != nil {
			return at, pathNVM, fmt.Errorf("core: read %v: %w", addr, err)
		}
		c.misses.Inc()
		path = pathNVM
		sp.MarkAt(span.StageNVMCopy, int64(end))
	}
	if conn.writer != nil {
		conn.writer.ApplyPending(addr, buf)
	}
	return end, path, nil
}

// readCopy attempts to serve a read from a DRAM copy. It reads from the
// copy's generation header through the end of the requested range in one
// one-sided READ and validates the generation stamp; a mismatch means
// the client's remap view is stale and the slot was reused.
func (c *Client) readCopy(at simnet.Time, loc cache.Location, base, addr region.GAddr, buf []byte) (simnet.Time, bool) {
	qp, err := c.qpToNode(loc.Node)
	if err != nil {
		return at, false
	}
	delta := addr.Offset() - base.Offset()
	tmp := make([]byte, cache.CopyHeaderBytes+delta+int64(len(buf)))
	end, err := qp.Read(at, tmp, rdma.RemoteAddr{
		Region: rdma.RegionHandle{Node: loc.Node, RKey: loc.RKey},
		Offset: loc.Off,
	})
	if err != nil {
		return at, false
	}
	if gen := binary.BigEndian.Uint64(tmp); gen != loc.Gen {
		return end, false
	}
	copy(buf, tmp[cache.CopyHeaderBytes+delta:])
	return end, true
}

// Write stores data at addr (gwrite). With the proxy enabled the write
// is staged into the home server's DRAM ring at DRAM latency and flushed
// to NVM in the background; writes larger than a ring slot are chunked
// through the ring so the server-side flusher remains the single
// coherence authority. With the proxy disabled the write goes straight
// to NVM, followed by a write-through RPC when caching is on so a
// promoted copy cannot go stale.
func (c *Client) Write(addr region.GAddr, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	start := c.now
	sp := c.tracer.StartAt("write", int64(start))
	var end simnet.Time
	path, ringDepth := pathNVMDirect, 0
	if conn.writer != nil {
		end, err = c.writeProxied(conn, start, addr, data)
		path, ringDepth = pathProxyRing, conn.writer.PendingCount()
		sp.MarkAt(span.StageRingStage, int64(end))
	} else {
		end, err = c.writeDirect(conn, start, addr, data)
		sp.MarkAt(span.StageFlushPersist, int64(end))
	}
	if err != nil {
		sp.FinishAt(int64(start))
		return err
	}
	sp.FinishAt(int64(end))
	c.now = end
	c.writes.Inc()
	c.writeLat.Record(end.Sub(start))
	c.flight.Record(telemetry.Event{
		TimeNanos: int64(end), Client: c.name, Op: "write",
		Addr: uint64(addr), Len: len(data), Path: path,
		RingDepth: ringDepth, LatNanos: int64(end.Sub(start)),
	})
	conn.rec.RecordWrite(addr)
	c.afterAccess(conn)
	return nil
}

func (c *Client) writeProxied(conn *serverConn, at simnet.Time, addr region.GAddr, data []byte) (simnet.Time, error) {
	end := at
	for off := 0; off < len(data); off += c.maxStg {
		hi := off + c.maxStg
		if hi > len(data) {
			hi = len(data)
		}
		chunkAddr := addr.Add(int64(off))
		var err error
		end, err = conn.writer.Stage(end, chunkAddr, chunkAddr.Offset(), data[off:hi])
		if err != nil {
			return at, fmt.Errorf("core: write %v: %w", addr, err)
		}
	}
	return end, nil
}

func (c *Client) writeDirect(conn *serverConn, at simnet.Time, addr region.GAddr, data []byte) (simnet.Time, error) {
	end, err := conn.qp.Write(at, data, rdma.RemoteAddr{Region: conn.nvm, Offset: addr.Offset()})
	if err != nil {
		return at, fmt.Errorf("core: write %v: %w", addr, err)
	}
	if c.poolNVM {
		// Durable remote NVM write: the standard RDMA persistence fence
		// is a read-after-write that forces the data out of the NIC into
		// the ADR domain — the extra round trip Gengar's proxy removes.
		end, err = conn.qp.Read(end, nil, rdma.RemoteAddr{Region: conn.nvm, Offset: addr.Offset()})
		if err != nil {
			return at, fmt.Errorf("core: persist fence %v: %w", addr, err)
		}
	}
	if c.opts.Cache {
		// Keep any promoted copy coherent: the home server re-reads the
		// just-written NVM range and refreshes the copy.
		var w rpc.Writer
		w.U64(uint64(addr)).U32(uint32(len(data)))
		_, rpcEnd, err := conn.ctl.Call(end, server.KindWriteThrough, w.Bytes())
		if err != nil {
			return at, fmt.Errorf("core: write-through %v: %w", addr, err)
		}
		end = simnet.MaxTime(end, rpcEnd)
	}
	return end, nil
}

// afterAccess counts data-path traffic and, every DigestEvery accesses
// to a home server, ships the hotness digest there. The exchange is off
// the client's critical path in *simulated* time — it does not advance
// the client clock, modeling the paper's amortized digest reporting —
// but its network and server-CPU costs are still charged at the current
// instant, so heavy digest traffic shows up as fabric contention.
// Baselines without the cache feature report nothing. Called with c.mu
// held.
func (c *Client) afterAccess(conn *serverConn) {
	if !c.opts.Cache {
		return
	}
	conn.accesses++
	if conn.accesses < c.hot.DigestEvery {
		return
	}

	conn.accesses = 0
	c.digestExchange(conn, c.now)
}

// digestExchange sends one digest and refreshes the remap view if the
// server's epoch moved. It must not touch c.now: in simulated time it is
// off the client's critical path.
func (c *Client) digestExchange(conn *serverConn, at simnet.Time) {
	entries := conn.rec.Drain()
	var w rpc.Writer
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.U64(uint64(e.Addr)).U32(uint32(e.Reads)).U32(uint32(e.Writes))
	}
	resp, end, err := conn.ctl.Call(at, server.KindDigest, w.Bytes())
	if err != nil {
		return // digest loss is harmless; the next epoch retries
	}
	epoch := resp.U64()
	if resp.Err() != nil || epoch == conn.view.Epoch() {
		return
	}
	c.refreshView(conn, end)
}

// refreshView fetches the full remap table and installs it; it runs off
// the critical path and does not touch c.now.
func (c *Client) refreshView(conn *serverConn, at simnet.Time) {
	resp, _, err := conn.ctl.Call(at, server.KindRemapFetch, nil)
	if err != nil {
		return
	}
	epoch := resp.U64()
	n := int(resp.U32())
	entries := make(map[region.GAddr]cache.Location, n)
	for i := 0; i < n; i++ {
		base := region.GAddr(resp.U64())
		loc := cache.DecodeLocation(resp)
		if resp.Err() != nil {
			return
		}
		entries[base] = loc
	}
	conn.view.Replace(epoch, entries)
}

// Flush blocks until every proxied write this client has staged is
// applied to NVM (and to any promoted copy), advancing the client's
// clock to the last apply. It is the publication point for data that
// other clients will read without locks — e.g. a loader handing a table
// to workers.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	for _, conn := range c.conns {
		if conn.writer == nil {
			continue
		}
		if t := conn.writer.Drain(); t > c.now {
			c.now = t
		}
	}
	return nil
}

// SyncAllViews synchronously reports digests to every home server and
// refreshes every remap view — the quiescent "steady state" point the
// benchmark harness establishes after warm-up.
func (c *Client) SyncAllViews() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	conns := make([]*serverConn, 0, len(c.conns))
	for _, conn := range c.conns {
		conn.accesses = 0
		conns = append(conns, conn)
	}
	at := c.now
	c.mu.Unlock()
	for _, conn := range conns {
		c.digestExchange(conn, at)
	}
	return nil
}

// SyncView forces an immediate, synchronous digest + remap refresh
// against the home server of addr — useful for tests and for
// applications that just changed their access pattern.
func (c *Client) SyncView(addr region.GAddr) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	conn.accesses = 0
	at := c.now
	c.mu.Unlock()
	c.digestExchange(conn, at)
	return nil
}
