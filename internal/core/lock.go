package core

import (
	"fmt"

	"gengar/internal/region"
	"gengar/internal/telemetry/span"
)

// LockExclusive acquires the write lock covering addr. While held, the
// caller is the only writer of the object (and of any object sharing its
// lock-table slot).
//
// Versions follow seqlock discipline: acquisition bumps the object's
// version to an odd value and release bumps it back to even, so
// ReadOptimistic can detect in-progress and completed writes without
// taking a lock.
func (c *Client) LockExclusive(addr region.GAddr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	sp := c.tracer.StartAt("lock_ex", int64(c.now))
	end, err := conn.locks.LockExclusive(c.now, addr)
	if err != nil {
		sp.FinishAt(int64(c.now))
		return err
	}
	c.now = end
	if _, end, err = conn.locks.BumpVersion(c.now, addr); err != nil {
		// Roll the lock back so a failed acquire leaves no odd version.
		_, _ = conn.locks.UnlockExclusive(c.now, addr)
		sp.FinishAt(int64(c.now))
		return err
	}
	c.now = end
	sp.MarkAt(span.StageLockWait, int64(end))
	sp.FinishAt(int64(end))
	return nil
}

// UnlockExclusive publishes the caller's writes and releases the write
// lock: staged writes drain to NVM (and through to any DRAM copy), the
// object's version is bumped back to even so optimistic readers notice
// the change, and the lock word is cleared — in that order, so a reader
// that acquires the lock afterwards observes everything the writer did.
func (c *Client) UnlockExclusive(addr region.GAddr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	if conn.writer != nil {
		if t := conn.writer.Drain(); t > c.now {
			c.now = t
		}
	}
	if _, end, err := conn.locks.BumpVersion(c.now, addr); err != nil {
		return err
	} else {
		c.now = end
	}
	end, err := conn.locks.UnlockExclusive(c.now, addr)
	if err != nil {
		return err
	}
	c.now = end
	return nil
}

// LockShared acquires a read lock covering addr.
func (c *Client) LockShared(addr region.GAddr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	sp := c.tracer.StartAt("lock_sh", int64(c.now))
	end, err := conn.locks.LockShared(c.now, addr)
	if err != nil {
		sp.FinishAt(int64(c.now))
		return err
	}
	c.now = end
	sp.MarkAt(span.StageLockWait, int64(end))
	sp.FinishAt(int64(end))
	return nil
}

// UnlockShared releases a read lock covering addr.
func (c *Client) UnlockShared(addr region.GAddr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	end, err := conn.locks.UnlockShared(c.now, addr)
	if err != nil {
		return err
	}
	c.now = end
	return nil
}

// ReadOptimistic performs a lock-free consistent read of len(buf) bytes
// at addr using seqlock validation: it reads the object's version,
// fetches the data, and re-reads the version, retrying while a writer
// holds the lock (odd version) or committed in between (version moved).
// It is the cheap read path for read-mostly shared objects — no lock
// table writes at all — at the cost of retries under write contention.
func (c *Client) ReadOptimistic(addr region.GAddr, buf []byte) error {
	const maxAttempts = 64
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		v1, end, err := conn.locks.ReadVersion(c.now, addr)
		if err != nil {
			return err
		}
		c.now = end
		if v1%2 == 1 {
			continue // writer in progress
		}
		if c.now, _, err = c.readAt(conn, c.now, addr, buf, nil); err != nil {
			return err
		}
		v2, end, err := conn.locks.ReadVersion(c.now, addr)
		if err != nil {
			return err
		}
		c.now = end
		if v1 == v2 {
			c.reads.Inc()
			conn.rec.RecordRead(addr)
			c.afterAccess(conn)
			return nil
		}
	}
	return fmt.Errorf("core: optimistic read of %v: %w", addr, ErrContended)
}

// Version returns the current version of the object covering addr —
// the optimistic-concurrency primitive: read the version, read the data,
// re-read the version, and retry if it moved.
func (c *Client) Version(addr region.GAddr) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	conn, err := c.conn(addr)
	if err != nil {
		return 0, err
	}
	v, end, err := conn.locks.ReadVersion(c.now, addr)
	if err != nil {
		return 0, err
	}
	c.now = end
	return v, nil
}
