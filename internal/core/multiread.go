package core

import (
	"encoding/binary"
	"fmt"

	"gengar/internal/cache"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// ReadMulti performs a vectored gread: bufs[i] is filled from addrs[i].
// Requests targeting the same node are posted as one doorbell-batched
// chain and chains to different nodes overlap, so a k-record scan costs
// roughly one round trip instead of k — the optimization behind the
// scan-heavy workload numbers (YCSB-E, experiment E15).
//
// Cache redirection applies per entry, with the same generation-stamp
// validation as Read: entries whose copy turned out stale are re-fetched
// from their home NVM in a follow-up batch.
func (c *Client) ReadMulti(addrs []region.GAddr, bufs [][]byte) error {
	if len(addrs) != len(bufs) {
		return fmt.Errorf("core: ReadMulti with %d addrs and %d buffers", len(addrs), len(bufs))
	}
	if len(addrs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}

	type cachedEntry struct {
		idx   int
		loc   cache.Location
		delta int64
		tmp   []byte
	}
	conns := make([]*serverConn, len(addrs))
	groups := make(map[string][]rdma.ReadReq)
	cachedByNode := make(map[string][]cachedEntry)
	var nvmRetry []int // indexes to fetch from home NVM

	for i, addr := range addrs {
		conn, err := c.conn(addr)
		if err != nil {
			return err
		}
		conns[i] = conn
		if c.opts.Cache {
			if loc, base, ok := conn.view.Lookup(addr, int64(len(bufs[i]))); ok {
				delta := addr.Offset() - base.Offset()
				ent := cachedEntry{
					idx:   i,
					loc:   loc,
					delta: delta,
					tmp:   make([]byte, cache.CopyHeaderBytes+delta+int64(len(bufs[i]))),
				}
				cachedByNode[loc.Node] = append(cachedByNode[loc.Node], ent)
				groups[loc.Node] = append(groups[loc.Node], rdma.ReadReq{
					Dst: ent.tmp,
					Raddr: rdma.RemoteAddr{
						Region: rdma.RegionHandle{Node: loc.Node, RKey: loc.RKey},
						Offset: loc.Off,
					},
				})
				continue
			}
		}
		node := conn.nvm.Node
		groups[node] = append(groups[node], rdma.ReadReq{
			Dst:   bufs[i],
			Raddr: rdma.RemoteAddr{Region: conn.nvm, Offset: addr.Offset()},
		})
	}

	start := c.now
	end := start
	for node, reqs := range groups {
		qp, err := c.qpToNode(node)
		if err != nil {
			return err
		}
		e, err := qp.ReadBatch(start, reqs)
		if err != nil {
			return fmt.Errorf("core: read batch to %s: %w", node, err)
		}
		if e > end {
			end = e
		}
	}

	// Validate cached entries; stale generations fall back to home NVM.
	hits := 0
	for _, ents := range cachedByNode {
		for _, ent := range ents {
			if binary.BigEndian.Uint64(ent.tmp) == ent.loc.Gen {
				copy(bufs[ent.idx], ent.tmp[cache.CopyHeaderBytes+ent.delta:])
				hits++
				continue
			}
			c.staleGen.Inc()
			nvmRetry = append(nvmRetry, ent.idx)
		}
	}
	c.hits.Add(int64(hits))
	c.misses.Add(int64(len(addrs) - hits))
	if len(nvmRetry) > 0 {
		retryGroups := make(map[string][]rdma.ReadReq)
		for _, i := range nvmRetry {
			conn := conns[i]
			retryGroups[conn.nvm.Node] = append(retryGroups[conn.nvm.Node], rdma.ReadReq{
				Dst:   bufs[i],
				Raddr: rdma.RemoteAddr{Region: conn.nvm, Offset: addrs[i].Offset()},
			})
		}
		retryStart := end
		for node, reqs := range retryGroups {
			qp, err := c.qpToNode(node)
			if err != nil {
				return err
			}
			e, err := qp.ReadBatch(retryStart, reqs)
			if err != nil {
				return fmt.Errorf("core: stale-retry batch to %s: %w", node, err)
			}
			if e > end {
				end = e
			}
		}
	}
	c.now = end
	for i, addr := range addrs {
		if conns[i].writer != nil {
			conns[i].writer.ApplyPending(addr, bufs[i])
		}
		c.reads.Inc()
		conns[i].rec.RecordRead(addr)
		c.afterAccess(conns[i])
	}
	c.readLat.Record(simnet.Duration(end - start))
	return nil
}
