package core

import (
	"encoding/binary"
	"fmt"

	"gengar/internal/cache"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
	"gengar/internal/telemetry/span"
)

// ReadMulti performs a vectored gread: bufs[i] is filled from addrs[i].
// Requests targeting the same node are posted as one doorbell-batched
// chain and chains to different nodes overlap, so a k-record scan costs
// roughly one round trip instead of k — the optimization behind the
// scan-heavy workload numbers (YCSB-E, experiment E15).
//
// Cache redirection applies per entry, with the same generation-stamp
// validation as Read: entries whose copy turned out stale are re-fetched
// from their home NVM in one batched follow-up chain per node. All
// per-entry temporaries come from a pooled scratch, so the steady state
// allocates nothing per entry.
//
//gengar:hotpath
func (c *Client) ReadMulti(addrs []region.GAddr, bufs [][]byte) error {
	if len(addrs) != len(bufs) {
		return fmt.Errorf("core: ReadMulti with %d addrs and %d buffers", len(addrs), len(bufs))
	}
	if len(addrs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	s := getScratch()
	defer putScratch(s)

	for i, addr := range addrs {
		conn, err := c.conn(addr)
		if err != nil {
			return err
		}
		s.conns = append(s.conns, conn)
		if c.opts.Cache {
			if loc, base, ok := conn.view.Lookup(addr, int64(len(bufs[i]))); ok {
				delta := addr.Offset() - base.Offset()
				tmp := s.tmp(int(cache.CopyHeaderBytes + delta + int64(len(bufs[i]))))
				s.cached[loc.Node] = append(s.cached[loc.Node], cachedEntry{
					idx:   i,
					loc:   loc,
					delta: delta,
					tmp:   tmp,
				})
				s.readGroups[loc.Node] = append(s.readGroups[loc.Node], rdma.ReadReq{
					Dst: tmp,
					Raddr: rdma.RemoteAddr{
						Region: rdma.RegionHandle{Node: loc.Node, RKey: loc.RKey},
						Offset: loc.Off,
					},
				})
				continue
			}
		}
		node := conn.nvm.Node
		s.readGroups[node] = append(s.readGroups[node], rdma.ReadReq{
			Dst:   bufs[i],
			Raddr: rdma.RemoteAddr{Region: conn.nvm, Offset: addr.Offset()},
		})
	}

	start := c.now
	end := start
	sp := c.tracer.StartAt("read_multi", int64(start))
	for node, reqs := range s.readGroups {
		if len(reqs) == 0 {
			continue
		}
		qp, err := c.qpToNode(node)
		if err != nil {
			sp.FinishAt(int64(start))
			return err
		}
		e, err := qp.ReadBatch(start, reqs)
		if err != nil {
			sp.FinishAt(int64(start))
			return fmt.Errorf("core: read batch to %s: %w", node, err)
		}
		if e > end {
			end = e
		}
	}
	firstEnd := end

	// Validate cached entries; stale generations fall back to home NVM.
	hits := 0
	for _, ents := range s.cached {
		for _, ent := range ents {
			if binary.BigEndian.Uint64(ent.tmp) == ent.loc.Gen {
				copy(bufs[ent.idx], ent.tmp[cache.CopyHeaderBytes+ent.delta:])
				hits++
				continue
			}
			c.staleGen.Inc()
			s.nvmRetry = append(s.nvmRetry, ent.idx)
		}
	}
	c.hits.Add(int64(hits))
	c.misses.Add(int64(len(addrs) - hits))
	// One stage mark covers the overlapped first round: cacheHit if any
	// entry was served from a DRAM copy, nvmCopy for an all-NVM chain.
	if hits > 0 {
		sp.MarkAt(span.StageCacheHit, int64(firstEnd))
	} else {
		sp.MarkAt(span.StageNVMCopy, int64(firstEnd))
	}
	if len(s.nvmRetry) > 0 {
		// The follow-ups go out as one batched chain per home node, not
		// as sequential per-entry reads: a burst of stale copies (a remap
		// epoch just moved) costs one extra round trip, not one per entry.
		for _, i := range s.nvmRetry {
			conn := s.conns[i]
			s.retryGroups[conn.nvm.Node] = append(s.retryGroups[conn.nvm.Node], rdma.ReadReq{
				Dst:   bufs[i],
				Raddr: rdma.RemoteAddr{Region: conn.nvm, Offset: addrs[i].Offset()},
			})
		}
		retryStart := end
		for node, reqs := range s.retryGroups {
			if len(reqs) == 0 {
				continue
			}
			qp, err := c.qpToNode(node)
			if err != nil {
				sp.FinishAt(int64(end))
				return err
			}
			e, err := qp.ReadBatch(retryStart, reqs)
			if err != nil {
				sp.FinishAt(int64(end))
				return fmt.Errorf("core: stale-retry batch to %s: %w", node, err)
			}
			if e > end {
				end = e
			}
		}
		sp.MarkAt(span.StageNVMCopy, int64(end))
	}
	sp.FinishAt(int64(end))
	c.now = end
	for i, addr := range addrs {
		if s.conns[i].writer != nil {
			s.conns[i].writer.ApplyPending(addr, bufs[i])
		}
		c.reads.Inc()
		s.conns[i].rec.RecordRead(addr)
		c.afterAccess(s.conns[i])
	}
	c.readLat.Record(simnet.Duration(end - start))
	return nil
}
