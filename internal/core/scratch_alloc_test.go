//go:build !race

// Allocation-regression tests: the vectored data-path ops run from
// pooled scratch, so their steady state must not allocate per entry.
// The race detector instruments allocations, so these run only in
// normal builds.

package core

import (
	"bytes"
	"testing"

	"gengar/internal/config"
	"gengar/internal/region"
)

func TestReadMultiCachedSteadyStateAllocs(t *testing.T) {
	// Promote one object, then hammer it with vectored cached reads. Each
	// entry needs a header+payload staging buffer; those come from the
	// scratch pool, so allocations must stay far below one per entry.
	cfg := testConfig()
	cfg.Servers = 1
	cfg.Hotness.DigestEvery = 1 << 30 // keep digest traffic out of the loop
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	a, _ := cl.Malloc(512)
	if err := cl.Write(a, bytes.Repeat([]byte{0x5a}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, a)
	settle(t, c, cl, a)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted == 0 {
		t.Skip("promotion did not land")
	}

	const k = 16
	addrs := make([]region.GAddr, k)
	bufs := make([][]byte, k)
	for i := range addrs {
		addrs[i] = a
		bufs[i] = make([]byte, 512)
	}
	run := func() {
		if err := cl.ReadMulti(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool and per-node groups
	if hits := cl.Stats().CacheHits; hits < k {
		t.Skipf("cached path not taken (hits=%d)", hits)
	}
	allocs := testing.AllocsPerRun(50, run)
	// One chain bookkeeping alloc per call is fine; one per entry is the
	// regression this guards against.
	if allocs >= k/2 {
		t.Fatalf("ReadMulti allocates %.1f times per call for %d cached entries", allocs, k)
	}
}

func TestWriteMultiDirectSteadyStateAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.Servers = 1
	cfg.Features = config.Features{} // direct path: chain + one fence
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	const k = 16
	addrs := make([]region.GAddr, k)
	bufs := make([][]byte, k)
	for i := range addrs {
		a, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		bufs[i] = bytes.Repeat([]byte{byte(i)}, 128)
	}
	run := func() {
		if err := cl.WriteMulti(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	allocs := testing.AllocsPerRun(50, run)
	if allocs >= k/2 {
		t.Fatalf("WriteMulti allocates %.1f times per call for %d entries", allocs, k)
	}
}

// measureSimOpAllocs reports steady-state allocs/op for Read, Write,
// ReadMulti and WriteMulti against a fresh single-server sim cluster.
func measureSimOpAllocs(t *testing.T, sample int) (read, write, readMulti, writeMulti float64) {
	t.Helper()
	cfg := testConfig()
	cfg.Servers = 1
	cfg.Hotness.DigestEvery = 1 << 30
	c := newTestCluster(t, cfg)
	c.Tracer().SetSampleEvery(sample)
	cl := connect(t, c, "u1")
	const k = 8
	addrs := make([]region.GAddr, k)
	bufs := make([][]byte, k)
	for i := range addrs {
		a, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		bufs[i] = bytes.Repeat([]byte{byte(i)}, 128)
	}
	one := make([]byte, 128)
	warm := func() {
		if err := cl.Write(addrs[0], bufs[0]); err != nil {
			t.Fatal(err)
		}
		if err := cl.Read(addrs[0], one); err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteMulti(addrs, bufs); err != nil {
			t.Fatal(err)
		}
		if err := cl.ReadMulti(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		warm()
	}
	read = testing.AllocsPerRun(50, func() {
		if err := cl.Read(addrs[0], one); err != nil {
			t.Fatal(err)
		}
	})
	write = testing.AllocsPerRun(50, func() {
		if err := cl.Write(addrs[0], bufs[0]); err != nil {
			t.Fatal(err)
		}
	})
	readMulti = testing.AllocsPerRun(50, func() {
		if err := cl.ReadMulti(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	})
	writeMulti = testing.AllocsPerRun(50, func() {
		if err := cl.WriteMulti(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	})
	return read, write, readMulti, writeMulti
}

// TestUnsampledTracingAddsNoAllocsSim is the sim-mount half of the
// tracing zero-cost claim: with the cluster tracer's sampling gate
// armed but never firing, every data-path op must allocate exactly as
// much as with tracing disabled.
func TestUnsampledTracingAddsNoAllocsSim(t *testing.T) {
	baseR, baseW, baseRM, baseWM := measureSimOpAllocs(t, 0)
	trR, trW, trRM, trWM := measureSimOpAllocs(t, 1<<30)
	for _, c := range []struct {
		op           string
		base, traced float64
	}{
		{"Read", baseR, trR},
		{"Write", baseW, trW},
		{"ReadMulti", baseRM, trRM},
		{"WriteMulti", baseWM, trWM},
	} {
		if c.traced > c.base+0.5 {
			t.Errorf("%s: %.1f allocs/op with unsampled tracing, %.1f without — tracing must be free when unsampled",
				c.op, c.traced, c.base)
		}
	}
}
