// Package core implements the Gengar client library: the simple
// programming API the paper exposes over the distributed hybrid memory
// pool (gmalloc/gfree/gread/gwrite plus locking), together with the
// client half of every Gengar mechanism — hotness digests, the cached
// remap view that redirects hot reads to distributed DRAM buffers, and
// proxied writes with read-your-writes.
//
// A Client models one application thread: operations advance its private
// simulated clock, so closed-loop benchmark drivers get queueing-accurate
// latencies for free. Use one Client per concurrent actor.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gengar/internal/cache"
	"gengar/internal/config"
	"gengar/internal/hmem"
	"gengar/internal/hotness"
	"gengar/internal/lock"
	"gengar/internal/metrics"
	"gengar/internal/proxy"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/server"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

// Errors returned by client operations.
var (
	// ErrUnknownServer reports an address homed on a server the client
	// has no session with.
	ErrUnknownServer = errors.New("core: address homed on unknown server")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("core: client closed")
	// ErrContended reports that an optimistic read exhausted its retries
	// against concurrent writers; take a shared lock instead.
	ErrContended = errors.New("core: optimistic read contended")
)

// serverConn is the client's session with one home server.
type serverConn struct {
	srv      *server.Server
	ctl      *rpc.Client
	qp       *rdma.QP
	locks    *lock.Client
	writer   *proxy.Writer
	view     *cache.ClientView
	nvm      rdma.RegionHandle
	rec      *hotness.Recorder
	ringBase int64

	accesses int // data-path accesses since the last digest
}

// Client is one user of the distributed hybrid memory pool.
type Client struct {
	id      uint32
	name    string
	cluster *server.Cluster
	node    *rdma.Node
	opts    config.Features
	hot     config.Hotness
	maxStg  int
	poolNVM bool // pool media needs a persistence fence on direct writes

	//gengar:lint-ignore lock-across-blocking a Client models one application thread: c.mu serializes its operations by design, and the calls it spans advance the client's private simulated clock rather than contending in wall time
	mu      sync.Mutex
	now     simnet.Time
	conns   map[uint16]*serverConn
	nodeQPs map[string]*rdma.QP
	rr      int
	closed  bool

	// flight is the cluster's shared operation recorder; every data-path
	// op appends one structured event.
	flight *telemetry.FlightRecorder

	// tracer is the cluster's shared op tracer. Ops mark spans with
	// explicit simulated instants (StartAt/MarkAt/FinishAt), so both
	// mounts attribute the same stages; sampling off (the default) makes
	// every span call a nil no-op.
	tracer *span.Tracer

	readLat  metrics.Histogram
	writeLat metrics.Histogram
	hits     metrics.Counter
	misses   metrics.Counter
	staleGen metrics.Counter
	reads    metrics.Counter
	writes   metrics.Counter

	// Batched-write accounting: chain lengths, and how many per-record
	// persist fences / write-through RPCs batching coalesced away.
	writeBatchLen   metrics.Histogram
	coalescedFences metrics.Counter
	coalescedRPCs   metrics.Counter
}

// Connect joins the pool as a new user named name, opening a session
// (control channel, data queue pair, lock client, staging ring) with
// every server. Feature switches come from the cluster configuration.
func Connect(c *server.Cluster, name string) (*Client, error) {
	cfg := c.Config()
	node, err := c.Fabric().AddNode("client-" + name)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		id:      c.NextClientID(),
		name:    name,
		cluster: c,
		node:    node,
		opts:    cfg.Features,
		hot:     cfg.Hotness,
		maxStg:  cfg.MaxProxiedWrite(),
		poolNVM: cfg.PoolMedia.Kind == hmem.KindNVM,
		flight:  c.Recorder(),
		tracer:  c.Tracer(),
		conns:   make(map[uint16]*serverConn),
		nodeQPs: make(map[string]*rdma.QP),
	}
	cl.registerTelemetry(c.Telemetry())
	for _, s := range c.Registry().Servers() {
		conn, err := cl.openSession(s)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("core: connect %s to server %d: %w", name, s.ID(), err)
		}
		cl.conns[s.ID()] = conn
	}
	return cl, nil
}

// registerTelemetry exposes the client's op counters and latency
// histograms in the cluster registry under the gengar_client_* names,
// labeled with the client's name. The registered instruments are the
// same ones Stats reads, so both views always agree.
func (c *Client) registerTelemetry(reg *telemetry.Registry) {
	cl := telemetry.L("client", c.name)
	reg.RegisterCounter("gengar_client_reads_total", "greads issued", &c.reads, cl)
	reg.RegisterCounter("gengar_client_writes_total", "gwrites issued", &c.writes, cl)
	reg.RegisterCounter("gengar_client_cache_hits_total", "reads served from a DRAM copy", &c.hits, cl)
	reg.RegisterCounter("gengar_client_cache_misses_total", "reads served from home NVM", &c.misses, cl)
	reg.RegisterCounter("gengar_client_stale_retries_total", "DRAM-copy reads retried on a stale generation", &c.staleGen, cl)
	reg.RegisterHistogram("gengar_client_read_latency_seconds", "simulated gread latency", &c.readLat, cl)
	reg.RegisterHistogram("gengar_client_write_latency_seconds", "simulated gwrite latency", &c.writeLat, cl)
	reg.RegisterHistogram("gengar_client_write_batch_len", "records per batched write chain", &c.writeBatchLen, cl)
	reg.RegisterCounter("gengar_client_coalesced_fences_total", "persist fences saved by write batching", &c.coalescedFences, cl)
	reg.RegisterCounter("gengar_client_coalesced_writethrough_total", "write-through RPCs saved by write batching", &c.coalescedRPCs, cl)
}

func (c *Client) openSession(s *server.Server) (*serverConn, error) {
	ctl, err := rpc.Dial(c.node, s.Node(), s.RPC())
	if err != nil {
		return nil, err
	}
	resp, end, err := ctl.Call(c.now, server.KindOpenSession, nil)
	if err != nil {
		ctl.Close()
		return nil, err
	}
	ringRKey := resp.U32()
	ringBase := resp.I64()
	ringSlots := int(resp.U32())
	ringSlotSize := int(resp.U32())
	nvmRKey := resp.U32()
	lockRKey := resp.U32()
	lockBase := resp.I64()
	lockSlots := int(resp.U32())
	if err := resp.Err(); err != nil {
		ctl.Close()
		return nil, err
	}
	c.now = simnet.MaxTime(c.now, end)

	qp, err := c.qpToNode(s.Node().ID())
	if err != nil {
		ctl.Close()
		return nil, err
	}
	locks, err := lock.NewClient(qp, lock.Geometry{
		Handle: rdma.RegionHandle{Node: s.Node().ID(), RKey: lockRKey},
		Base:   lockBase,
		Slots:  lockSlots,
	}, c.id, 0, 200*time.Nanosecond)
	if err != nil {
		ctl.Close()
		return nil, err
	}
	var writer *proxy.Writer
	if c.opts.Proxy {
		writer, err = proxy.NewWriter(s.Engine(), qp, proxy.Ring{
			ID:       int(c.id),
			Handle:   rdma.RegionHandle{Node: s.Node().ID(), RKey: ringRKey},
			Base:     ringBase,
			DevBase:  ringBase, // ring MR covers the whole ring device
			Slots:    ringSlots,
			SlotSize: ringSlotSize,
		})
		if err != nil {
			ctl.Close()
			return nil, err
		}
	}
	conn := &serverConn{
		srv:      s,
		ctl:      ctl,
		qp:       qp,
		locks:    locks,
		writer:   writer,
		view:     cache.NewClientView(),
		nvm:      rdma.RegionHandle{Node: s.Node().ID(), RKey: nvmRKey},
		rec:      hotness.NewRecorder(),
		ringBase: ringBase,
	}

	// Per-session instruments, labeled (client, home server).
	reg := c.cluster.Telemetry()
	labels := []telemetry.Label{
		telemetry.L("client", c.name),
		telemetry.L("server", fmt.Sprintf("%d", s.ID())),
	}
	conn.locks.RegisterTelemetry(reg, labels...)
	conn.view.RegisterTelemetry(reg, labels...)
	if conn.writer != nil {
		w := conn.writer
		reg.GaugeFunc("gengar_client_ring_occupancy_high_water",
			"most staging-ring slots ever simultaneously in use", w.OccupancyHighWater, labels...)
	}
	return conn, nil
}

// qpToNode returns (creating on demand) a connected queue pair to the
// given server node — used both for home-server data ops and for reading
// DRAM copies hosted on other servers. Caller must hold no locks; it is
// called under c.mu or during connect only.
func (c *Client) qpToNode(nodeID string) (*rdma.QP, error) {
	if qp, ok := c.nodeQPs[nodeID]; ok {
		return qp, nil
	}
	s, ok := c.cluster.Registry().ByNode(nodeID)
	if !ok {
		return nil, fmt.Errorf("core: no server at node %q", nodeID)
	}
	cq, sq := c.node.NewQP(), s.Node().NewQP()
	if err := cq.Connect(sq); err != nil {
		return nil, err
	}
	c.nodeQPs[nodeID] = cq
	return cq, nil
}

// ID returns the client's fabric-unique user ID.
func (c *Client) ID() uint32 { return c.id }

// Name returns the client's name.
func (c *Client) Name() string { return c.name }

// Now returns the client's simulated clock (the completion instant of
// its most recent operation).
func (c *Client) Now() simnet.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the client's clock forward to t if t is later — the
// synchronization primitive phase barriers use (e.g. MapReduce reducers
// must not start before the last mapper finished).
func (c *Client) AdvanceTo(t simnet.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// AdvanceToFrontier moves the client's clock to the fabric-wide
// simulated frontier (the latest completion observed anywhere). Harness
// code calls it between a setup phase and a measured phase, so stale
// resource watermarks left by setup traffic do not surface as a phantom
// first-operation stall.
func (c *Client) AdvanceToFrontier() {
	c.AdvanceTo(c.cluster.Fabric().Clock().Now())
}

func (c *Client) conn(addr region.GAddr) (*serverConn, error) {
	conn, ok := c.conns[addr.Server()]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownServer, addr)
	}
	return conn, nil
}

// Close drains proxied writes and tears down all sessions.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, conn := range c.conns {
		if conn.writer != nil {
			conn.writer.Close() // drains staged writes first
		}
		var w rpc.Writer
		w.I64(conn.ringBase)
		// Best-effort: a failed close just strands one ring until the
		// server restarts.
		_, _, _ = conn.ctl.Call(c.now, server.KindCloseSession, w.Bytes())
		conn.ctl.Close()
	}
}
