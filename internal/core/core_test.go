package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gengar/internal/config"
	"gengar/internal/region"
	"gengar/internal/server"
)

// testConfig returns a small, fast-epoch configuration for integration
// tests.
func testConfig() config.Cluster {
	cfg := config.Default()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 20
	cfg.DRAMBufferBytes = 1 << 16
	cfg.RingBytes = 1 << 23
	cfg.LockSlots = 1 << 10
	cfg.Hotness.DigestEvery = 8
	cfg.Hotness.PlanEvery = time.Microsecond
	cfg.Hotness.MinWeight = 2
	return cfg
}

func newTestCluster(t *testing.T, cfg config.Cluster) *server.Cluster {
	t.Helper()
	c, err := server.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func connect(t *testing.T, c *server.Cluster, name string) *Client {
	t.Helper()
	cl, err := Connect(c, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// settle waits for all pending flushes and plans across the cluster and
// refreshes the client's remap views.
func settle(t *testing.T, c *server.Cluster, cl *Client, addr region.GAddr) {
	t.Helper()
	for _, s := range c.Registry().Servers() {
		if err := s.Engine().Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.SyncView(addr); err != nil {
		t.Fatal(err)
	}
}

func TestConnectClose(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	if cl.ID() == 0 || cl.Name() != "u1" {
		t.Fatalf("identity: %d %q", cl.ID(), cl.Name())
	}
	cl.Close()
	if _, err := cl.Malloc(64); !errors.Is(err, ErrClosed) {
		t.Fatalf("malloc after close: %v", err)
	}
	if err := cl.Read(region.MustGAddr(1, 64), make([]byte, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestMallocRoundRobin(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	servers := make(map[uint16]bool)
	for i := 0; i < 4; i++ {
		addr, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if addr.IsNil() {
			t.Fatal("nil address from malloc")
		}
		servers[addr.Server()] = true
	}
	if len(servers) != 2 {
		t.Fatalf("round robin touched %d servers, want 2", len(servers))
	}
}

func TestMallocOnAndFree(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	addr, err := cl.MallocOn(2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Server() != 2 {
		t.Fatalf("homed on %d, want 2", addr.Server())
	}
	if err := cl.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := cl.Free(addr); err == nil {
		t.Fatal("double free accepted")
	}
	if _, err := cl.MallocOn(99, 64); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("malloc on phantom server: %v", err)
	}
}

func TestMallocErrors(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	if _, err := cl.Malloc(-1); err == nil {
		t.Fatal("negative malloc accepted")
	}
	if _, err := cl.Malloc(1 << 30); err == nil {
		t.Fatal("oversized malloc accepted")
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	addr, err := cl.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("gengar-"), 100) // 700 bytes
	if err := cl.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := cl.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
	st := cl.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ReadLatency.Count != 1 || st.ReadLatency.Mean <= 0 {
		t.Fatalf("read latency: %+v", st.ReadLatency)
	}
}

func TestReadYourWritesImmediate(t *testing.T) {
	// With the proxy, a read issued immediately after a write must see
	// the write even if it has not flushed yet.
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(64)
	for i := 0; i < 20; i++ {
		val := []byte{byte(i), byte(i + 1)}
		if err := cl.Write(addr, val); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 2)
		if err := cl.Read(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: read %v, want %v", i, got, val)
		}
	}
}

func TestSubRangeReadWrite(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(256)
	if err := cl.Write(addr, bytes.Repeat([]byte{'a'}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(addr.Add(100), []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := cl.Read(addr.Add(99), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aXYZa" {
		t.Fatalf("sub-range read %q", got)
	}
}

func TestLargeWriteChunksThroughProxy(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	size := int64(3*cfg.MaxProxiedWrite() + 100)
	addr, err := cl.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := cl.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := cl.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked write corrupted data")
	}
}

func TestCachePromotionServesReads(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	addr, err := cl.MallocOn(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 1024)
	if err := cl.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	// Hammer the object so it becomes hot and gets promoted.
	for i := 0; i < 32; i++ {
		if err := cl.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, addr)
	settle(t, c, cl, addr) // second pass picks up the bumped epoch

	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted == 0 {
		t.Fatal("hot object never promoted")
	}
	before := cl.Stats().CacheHits
	if err := cl.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cached read returned wrong data")
	}
	if cl.Stats().CacheHits != before+1 {
		t.Fatalf("read did not hit cache (hits %d -> %d)", before, cl.Stats().CacheHits)
	}
}

func TestCacheCoherentAfterProxiedWrite(t *testing.T) {
	// Write-through: after promotion, a proxied write followed by drain
	// must be visible via the cached copy.
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	addr, _ := cl.MallocOn(1, 512)
	if err := cl.Write(addr, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, addr)
	settle(t, c, cl, addr)

	// A second client (no pending-write overlay) must see the new value
	// through the cache after the writer's lock release.
	cl2 := connect(t, c, "u2")
	if err := cl.LockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(addr, bytes.Repeat([]byte{2}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := cl.UnlockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := cl2.SyncView(addr); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := cl2.LockShared(addr); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if err := cl2.UnlockShared(addr); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 2 {
			t.Fatalf("byte %d = %d, want 2 (stale cache copy)", i, b)
		}
	}
}

func TestStaleGenerationFallback(t *testing.T) {
	// Tiny buffer: one promoted object at a time. Promote A, capture the
	// view, then make B hot so A is demoted and its slot reused; reading
	// A through the stale view must detect the reuse and fall back.
	cfg := testConfig()
	cfg.Servers = 1
	cfg.DRAMBufferBytes = 1 << 10 // fits one 512B copy (rounded 1024 incl header)
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")

	a, _ := cl.Malloc(512)
	b, _ := cl.Malloc(512)
	if err := cl.Write(a, bytes.Repeat([]byte{'A'}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(b, bytes.Repeat([]byte{'B'}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, a)
	settle(t, c, cl, a)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted != 1 {
		t.Skipf("promotion did not land (promoted=%d)", srv.Stats().Promoted)
	}

	// Second client hammers B far harder so the planner displaces A.
	cl2 := connect(t, c, "u2")
	for i := 0; i < 256; i++ {
		if err := cl2.Read(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl2, b)
	settle(t, c, cl2, b)

	// cl's view still maps A; the slot now holds B's copy.
	if err := cl.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != 'A' {
			t.Fatalf("stale-view read returned wrong byte %q at %d", buf[i], i)
		}
	}
}

func TestDirectModeRoundtrip(t *testing.T) {
	// NVM-direct baseline: no cache, no proxy.
	c := newTestCluster(t, func() config.Cluster {
		cfg := testConfig()
		cfg.Features = config.Features{}
		return cfg
	}())
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(256)
	data := bytes.Repeat([]byte{7}, 256)
	if err := cl.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := cl.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("direct mode roundtrip mismatch")
	}
	if st := cl.Stats(); st.CacheHits != 0 {
		t.Fatal("direct mode hit a cache")
	}
}

func TestNoProxyCacheStaysCoherent(t *testing.T) {
	// Ablation: cache on, proxy off. Direct writes must refresh promoted
	// copies via the write-through RPC.
	cfg := testConfig()
	cfg.Servers = 1
	cfg.Features = config.Features{Cache: true, Proxy: false}
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(512)
	if err := cl.Write(addr, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, addr)
	settle(t, c, cl, addr)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted == 0 {
		t.Skip("promotion did not land")
	}
	if err := cl.Write(addr, bytes.Repeat([]byte{9}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != 9 {
			t.Fatalf("stale cached byte at %d after direct write", i)
		}
	}
	if cl.Stats().CacheHits == 0 {
		t.Fatal("reads never hit the cache; coherence path untested")
	}
}

func TestCrossClientVisibilityWithLocks(t *testing.T) {
	c := newTestCluster(t, testConfig())
	w := connect(t, c, "writer")
	r := connect(t, c, "reader")
	addr, err := w.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		val := bytes.Repeat([]byte{byte(round + 1)}, 128)
		if err := w.LockExclusive(addr); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(addr, val); err != nil {
			t.Fatal(err)
		}
		if err := w.UnlockExclusive(addr); err != nil {
			t.Fatal(err)
		}
		if err := r.LockShared(addr); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 128)
		if err := r.Read(addr, got); err != nil {
			t.Fatal(err)
		}
		if err := r.UnlockShared(addr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("round %d: reader saw stale data", round)
		}
	}
}

func TestVersionBumpsOnUnlock(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(64)
	v0, err := cl.Version(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(addr, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := cl.UnlockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	v1, err := cl.Version(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Seqlock discipline: +1 at lock (odd), +1 at unlock (even again).
	if v1 != v0+2 {
		t.Fatalf("version %d -> %d, want +2", v0, v1)
	}
	if v1%2 != 0 {
		t.Fatalf("version %d odd after unlock", v1)
	}
}

func TestReadOptimistic(t *testing.T) {
	c := newTestCluster(t, testConfig())
	w := connect(t, c, "writer")
	r := connect(t, c, "reader")
	addr, err := w.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, 128)
	if err := w.LockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	// While the writer holds the lock, an optimistic read must NOT
	// return torn data — it retries and eventually reports contention.
	got := make([]byte, 128)
	if err := r.ReadOptimistic(addr, got); !errors.Is(err, ErrContended) {
		t.Fatalf("optimistic read during write: %v", err)
	}
	if err := w.UnlockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	// After the unlock it succeeds and sees the committed value.
	if err := r.ReadOptimistic(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("optimistic read returned stale data")
	}
	if err := r.ReadOptimistic(region.MustGAddr(99, 64), got); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("optimistic read of unknown server: %v", err)
	}
	r.Close()
	if err := r.ReadOptimistic(addr, got); !errors.Is(err, ErrClosed) {
		t.Fatalf("optimistic read after close: %v", err)
	}
}

func TestUnknownServerAddress(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	bad := region.MustGAddr(77, 64)
	if err := cl.Read(bad, make([]byte, 4)); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("read: %v", err)
	}
	if err := cl.Write(bad, []byte("x")); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("write: %v", err)
	}
	if err := cl.LockExclusive(bad); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("lock: %v", err)
	}
	if err := cl.Free(bad); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("free: %v", err)
	}
}

func TestClockAdvances(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(64)
	t0 := cl.Now()
	if err := cl.Write(addr, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	t1 := cl.Now()
	if !t1.After(t0) {
		t.Fatalf("clock did not advance: %v -> %v", t0, t1)
	}
	if err := cl.Read(addr, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	if !cl.Now().After(t1) {
		t.Fatal("clock did not advance on read")
	}
}

func TestFreeDemotesPromotedObject(t *testing.T) {
	cfg := testConfig()
	cfg.Servers = 1
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	addr, _ := cl.Malloc(512)
	if err := cl.Write(addr, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, addr)
	settle(t, c, cl, addr)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted == 0 {
		t.Skip("promotion did not land")
	}
	if err := cl.Free(addr); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Promoted != 0 {
		t.Fatalf("promoted count %d after free", st.Promoted)
	}
	if st.BufferUsed != 0 {
		t.Fatalf("buffer bytes %d leaked after free", st.BufferUsed)
	}
}

func TestAdvanceToAndFrontier(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	t0 := cl.Now()
	cl.AdvanceTo(t0 + 1000)
	if cl.Now() != t0+1000 {
		t.Fatalf("AdvanceTo: %v", cl.Now())
	}
	cl.AdvanceTo(t0) // never backwards
	if cl.Now() != t0+1000 {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	// Another client's op pushes the fabric frontier past this clock.
	cl2 := connect(t, c, "u2")
	addr, _ := cl2.Malloc(64)
	for i := 0; i < 50; i++ {
		if err := cl2.Write(addr, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	cl.AdvanceToFrontier()
	if cl.Now() < cl2.Now() {
		t.Fatalf("frontier sync: %v < %v", cl.Now(), cl2.Now())
	}
}

func TestSyncAllViewsRefreshesEveryServer(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	// Make one hot object per server.
	buf := make([]byte, 512)
	var addrs []region.GAddr
	for sid := uint16(1); sid <= 2; sid++ {
		a, err := cl.MallocOn(sid, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Write(a, buf); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for i := 0; i < 32; i++ {
		for _, a := range addrs {
			if err := cl.Read(a, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range c.Registry().Servers() {
		if err := s.Engine().Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.SyncAllViews(); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Registry().Servers() {
		if err := s.Engine().Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.SyncAllViews(); err != nil {
		t.Fatal(err)
	}
	before := cl.Stats().CacheHits
	for _, a := range addrs {
		if err := cl.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Stats().CacheHits - before; got != int64(len(addrs)) {
		t.Fatalf("hits after SyncAllViews = %d, want %d", got, len(addrs))
	}
	cl.Close()
	if err := cl.SyncAllViews(); !errors.Is(err, ErrClosed) {
		t.Fatalf("SyncAllViews after close: %v", err)
	}
	if err := cl.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after close: %v", err)
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{CacheHits: 3, CacheMiss: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("HitRate = %f", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty HitRate")
	}
}

func TestReadMulti(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	const k = 6
	addrs := make([]region.GAddr, k)
	bufs := make([][]byte, k)
	for i := range addrs {
		a, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Write(a, bytes.Repeat([]byte{byte(i + 1)}, 128)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		bufs[i] = make([]byte, 128)
	}
	t0 := cl.Now()
	if err := cl.ReadMulti(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	batched := cl.Now().Sub(t0)
	for i, b := range bufs {
		for _, v := range b {
			if v != byte(i+1) {
				t.Fatalf("entry %d corrupted: %d", i, v)
			}
		}
	}
	// Sequential baseline for the same reads costs much more.
	t1 := cl.Now()
	for i := range addrs {
		if err := cl.Read(addrs[i], bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sequential := cl.Now().Sub(t1)
	if sequential < 2*batched {
		t.Fatalf("batch %v not well below sequential %v", batched, sequential)
	}
	// Validation and edge cases.
	if err := cl.ReadMulti(addrs[:2], bufs[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := cl.ReadMulti(nil, nil); err != nil {
		t.Fatalf("empty multi-read: %v", err)
	}
	if err := cl.ReadMulti([]region.GAddr{region.MustGAddr(88, 64)}, bufs[:1]); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("unknown server: %v", err)
	}
	cl.Close()
	if err := cl.ReadMulti(addrs, bufs); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

func TestReadMultiReadsYourWrites(t *testing.T) {
	c := newTestCluster(t, testConfig())
	cl := connect(t, c, "u1")
	a, _ := cl.Malloc(64)
	b, _ := cl.Malloc(64)
	if err := cl.Write(a, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(b, bytes.Repeat([]byte{2}, 64)); err != nil {
		t.Fatal(err)
	}
	bufs := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := cl.ReadMulti([]region.GAddr{a, b}, bufs); err != nil {
		t.Fatal(err)
	}
	if bufs[0][0] != 1 || bufs[1][0] != 2 {
		t.Fatal("multi-read missed own staged writes")
	}
}

func TestReadMultiHitsCache(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	cl := connect(t, c, "u1")
	a, _ := cl.MallocOn(1, 512)
	want := bytes.Repeat([]byte{0x77}, 512)
	if err := cl.Write(a, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if err := cl.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c, cl, a)
	settle(t, c, cl, a)
	srv, _ := c.Registry().ByID(1)
	if srv.Stats().Promoted == 0 {
		t.Skip("promotion did not land")
	}
	before := cl.Stats().CacheHits
	bufs := [][]byte{make([]byte, 512)}
	if err := cl.ReadMulti([]region.GAddr{a}, bufs); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().CacheHits != before+1 {
		t.Fatal("multi-read did not use the cache")
	}
	if !bytes.Equal(bufs[0], want) {
		t.Fatal("cached multi-read wrong data")
	}
}
