package core

import (
	"gengar/internal/metrics"
)

// Stats is a snapshot of one client's activity: operation counts, cache
// effectiveness and simulated latency distributions.
type Stats struct {
	Reads, Writes         int64
	CacheHits, CacheMiss  int64
	StaleGenRetries       int64
	ReadLatency, WriteLat metrics.Summary
}

// HitRate returns the fraction of reads served by a DRAM copy.
func (s Stats) HitRate() float64 {
	return metrics.Ratio(s.CacheHits, s.CacheHits+s.CacheMiss)
}

// Stats returns a snapshot of the client's counters and latency
// histograms.
func (c *Client) Stats() Stats {
	return Stats{
		Reads:           c.reads.Load(),
		Writes:          c.writes.Load(),
		CacheHits:       c.hits.Load(),
		CacheMiss:       c.misses.Load(),
		StaleGenRetries: c.staleGen.Load(),
		ReadLatency:     c.readLat.Summarize(),
		WriteLat:        c.writeLat.Summarize(),
	}
}
