package core

import (
	"sync"

	"gengar/internal/cache"
	"gengar/internal/proxy"
	"gengar/internal/rdma"
	"gengar/internal/region"
)

// cachedEntry tracks one ReadMulti entry served from a DRAM copy: where
// the copy lives and the header+payload staging buffer its generation
// stamp is validated from.
type cachedEntry struct {
	idx   int
	loc   cache.Location
	delta int64
	tmp   []byte
}

// wtEntry is one record of a batched write-through RPC.
type wtEntry struct {
	addr region.GAddr
	size int
}

// multiScratch holds every per-call temporary of the vectored data-path
// operations (ReadMulti/WriteMulti). Instances are pooled so the steady
// state allocates nothing per entry: maps keep their keys (the node set
// is small and stable) with value slices truncated in place, and the
// per-entry staging buffers are reused across calls.
type multiScratch struct {
	conns    []*serverConn
	nvmRetry []int

	readGroups  map[string][]rdma.ReadReq
	retryGroups map[string][]rdma.ReadReq
	cached      map[string][]cachedEntry

	stage       map[*serverConn][]proxy.StageReq
	writeGroups map[string][]rdma.WriteReq
	wt          map[string][]wtEntry
	nodeConn    map[string]*serverConn

	tmps [][]byte
	ntmp int
}

var scratchPool = sync.Pool{New: func() any {
	return &multiScratch{
		readGroups:  make(map[string][]rdma.ReadReq),
		retryGroups: make(map[string][]rdma.ReadReq),
		cached:      make(map[string][]cachedEntry),
		stage:       make(map[*serverConn][]proxy.StageReq),
		writeGroups: make(map[string][]rdma.WriteReq),
		wt:          make(map[string][]wtEntry),
		nodeConn:    make(map[string]*serverConn),
	}
}}

func getScratch() *multiScratch {
	s := scratchPool.Get().(*multiScratch)
	s.reset()
	return s
}

func putScratch(s *multiScratch) { scratchPool.Put(s) }

// reset truncates everything in place, keeping map keys and slice
// capacity so the next call reuses them without allocating.
func (s *multiScratch) reset() {
	s.conns = s.conns[:0]
	s.nvmRetry = s.nvmRetry[:0]
	s.ntmp = 0
	for k, v := range s.readGroups {
		s.readGroups[k] = v[:0]
	}
	for k, v := range s.retryGroups {
		s.retryGroups[k] = v[:0]
	}
	for k, v := range s.cached {
		s.cached[k] = v[:0]
	}
	for k, v := range s.stage {
		s.stage[k] = v[:0]
	}
	for k, v := range s.writeGroups {
		s.writeGroups[k] = v[:0]
	}
	for k, v := range s.wt {
		s.wt[k] = v[:0]
	}
}

// tmp returns a reusable buffer of length n, valid until the scratch is
// returned to the pool.
func (s *multiScratch) tmp(n int) []byte {
	if s.ntmp < len(s.tmps) {
		b := s.tmps[s.ntmp]
		if cap(b) < n {
			b = make([]byte, n)
			s.tmps[s.ntmp] = b
		}
		s.ntmp++
		return b[:n]
	}
	b := make([]byte, n)
	s.tmps = append(s.tmps, b)
	s.ntmp++
	return b
}
