package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gengar/internal/region"
)

// TestStressLockedSharedObjects runs several clients performing random
// locked read-modify-write transactions over a set of shared objects and
// checks the pool against an in-memory reference model guarded by the
// same critical sections. This exercises the full stack — proxied
// writes, drains on unlock, cache promotion/demotion churn, write-
// throughs and generation fallbacks — under real concurrency.
func TestStressLockedSharedObjects(t *testing.T) {
	cfg := testConfig()
	cfg.Servers = 3
	cfg.DRAMBufferBytes = 1 << 12 // tiny: force promotion churn + stale views
	cfg.Hotness.DigestEvery = 16
	cfg.Hotness.PlanEvery = 50 * time.Microsecond
	cfg.Hotness.MinWeight = 2
	c := newTestCluster(t, cfg)

	const (
		objects = 12
		objSize = 256
		clients = 4
		txPer   = 60
	)
	setup := connect(t, c, "setup")
	addrs := make([]region.GAddr, objects)
	ref := make([][]byte, objects)
	var refMu sync.Mutex
	for i := range addrs {
		a, err := setup.Malloc(objSize)
		if err != nil {
			t.Fatal(err)
		}
		init := bytes.Repeat([]byte{byte(i)}, objSize)
		if err := setup.Write(a, init); err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		ref[i] = append([]byte(nil), init...)
	}
	if err := setup.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for cid := 0; cid < clients; cid++ {
		cl := connect(t, c, fmt.Sprintf("stress%d", cid))
		wg.Add(1)
		go func(cid int, cl *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cid) + 99))
			buf := make([]byte, objSize)
			for tx := 0; tx < txPer; tx++ {
				i := rng.Intn(objects)
				a := addrs[i]
				if err := cl.LockExclusive(a); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				// Read the whole object; must match the reference.
				if err := cl.Read(a, buf); err != nil {
					t.Errorf("read: %v", err)
					_ = cl.UnlockExclusive(a)
					return
				}
				refMu.Lock()
				want := append([]byte(nil), ref[i]...)
				refMu.Unlock()
				if !bytes.Equal(buf, want) {
					t.Errorf("client %d tx %d obj %d: divergence from reference", cid, tx, i)
					_ = cl.UnlockExclusive(a)
					return
				}
				// Mutate a random sub-range.
				off := rng.Intn(objSize - 16)
				n := 1 + rng.Intn(16)
				patch := make([]byte, n)
				rng.Read(patch)
				if err := cl.Write(a.Add(int64(off)), patch); err != nil {
					t.Errorf("write: %v", err)
					_ = cl.UnlockExclusive(a)
					return
				}
				refMu.Lock()
				copy(ref[i][off:off+n], patch)
				refMu.Unlock()
				if err := cl.UnlockExclusive(a); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}(cid, cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Final verification from a fresh client under shared locks.
	verifier := connect(t, c, "verifier")
	buf := make([]byte, objSize)
	for i, a := range addrs {
		if err := verifier.LockShared(a); err != nil {
			t.Fatal(err)
		}
		if err := verifier.Read(a, buf); err != nil {
			t.Fatal(err)
		}
		if err := verifier.UnlockShared(a); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, ref[i]) {
			t.Fatalf("object %d: final state diverged from reference", i)
		}
	}
}
