package core

import (
	"fmt"
	"time"

	"gengar/internal/proxy"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/server"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

// WriteMulti performs a vectored gwrite: bufs[i] is stored at addrs[i].
// Requests targeting the same home server are posted as one
// doorbell-batched chain and chains to different servers overlap, so a
// k-record burst costs roughly one round trip instead of k — the write
// side of the batching ReadMulti gives scans (experiment E16).
//
// With the proxy enabled the burst is staged into consecutive ring
// slots with a single doorbell per chain, keeping per-slot credits,
// backpressure and read-your-writes intact. With the proxy disabled the
// chain goes straight to NVM and the per-op overheads coalesce: one
// persist fence per chain (a read-after-write fences every WRITE ahead
// of it on the queue pair) and one batched write-through RPC per server
// instead of one of each per record.
//
// Entries later in the slice overwrite earlier ones where they overlap,
// matching sequential Write order.
//
//gengar:hotpath
func (c *Client) WriteMulti(addrs []region.GAddr, bufs [][]byte) error {
	if len(addrs) != len(bufs) {
		return fmt.Errorf("core: WriteMulti with %d addrs and %d buffers", len(addrs), len(bufs))
	}
	if len(addrs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	s := getScratch()
	defer putScratch(s)

	for i, addr := range addrs {
		conn, err := c.conn(addr)
		if err != nil {
			return err
		}
		s.conns = append(s.conns, conn)
		if conn.writer != nil {
			// Writes larger than a ring slot are chunked through the
			// ring, exactly as Write does, so the server-side flusher
			// remains the single coherence authority.
			data := bufs[i]
			for off := 0; off < len(data); off += c.maxStg {
				hi := off + c.maxStg
				if hi > len(data) {
					hi = len(data)
				}
				chunkAddr := addr.Add(int64(off))
				s.stage[conn] = append(s.stage[conn], proxy.StageReq{
					Addr:   chunkAddr,
					NvmOff: chunkAddr.Offset(),
					Data:   data[off:hi],
				})
			}
			continue
		}
		node := conn.nvm.Node
		s.nodeConn[node] = conn
		s.writeGroups[node] = append(s.writeGroups[node], rdma.WriteReq{
			Src:   bufs[i],
			Raddr: rdma.RemoteAddr{Region: conn.nvm, Offset: addr.Offset()},
		})
		if c.opts.Cache {
			s.wt[node] = append(s.wt[node], wtEntry{addr: addr, size: len(bufs[i])})
		}
	}

	start := c.now
	end := start
	sp := c.tracer.StartAt("write_multi", int64(start))

	// Proxied chains: one doorbell-batched stage per home server.
	staged := false
	for conn, reqs := range s.stage {
		if len(reqs) == 0 {
			continue
		}
		e, err := conn.writer.StageMulti(start, reqs)
		if err != nil {
			sp.FinishAt(int64(start))
			return fmt.Errorf("core: stage batch to server %d: %w", conn.srv.ID(), err)
		}
		staged = true
		c.recordWriteChain(e, start, pathProxyRing, reqs[0].Addr, len(reqs), stageBytes(reqs), conn.writer.PendingCount())
		if e > end {
			end = e
		}
	}
	if staged {
		sp.MarkAt(span.StageRingStage, int64(end))
	}

	// Direct chains: one WRITE chain + one fence + one write-through RPC
	// per home server.
	direct := false
	for node, reqs := range s.writeGroups {
		if len(reqs) == 0 {
			continue
		}
		direct = true
		conn := s.nodeConn[node]
		e, err := conn.qp.WriteBatch(start, reqs)
		if err != nil {
			sp.FinishAt(int64(end))
			return fmt.Errorf("core: write batch to %s: %w", node, err)
		}
		if c.poolNVM {
			// One persist fence for the whole chain: WQEs on a queue pair
			// execute in order, so a single read-after-write forces every
			// WRITE ahead of it out of the NIC into the ADR domain — k-1
			// durability round trips coalesced away.
			e, err = conn.qp.Read(e, nil, reqs[len(reqs)-1].Raddr)
			if err != nil {
				sp.FinishAt(int64(end))
				return fmt.Errorf("core: persist fence %s: %w", node, err)
			}
			c.coalescedFences.Add(int64(len(reqs) - 1))
		}
		if ents := s.wt[node]; len(ents) > 0 {
			// Keep promoted copies coherent with one control-plane call
			// for the whole chain instead of one per record.
			var w rpc.Writer
			w.U32(uint32(len(ents)))
			for _, ent := range ents {
				w.U64(uint64(ent.addr)).U32(uint32(ent.size))
			}
			_, rpcEnd, err := conn.ctl.Call(e, server.KindWriteThroughBatch, w.Bytes())
			if err != nil {
				sp.FinishAt(int64(end))
				return fmt.Errorf("core: write-through batch to %s: %w", node, err)
			}
			e = simnet.MaxTime(e, rpcEnd)
			c.coalescedRPCs.Add(int64(len(ents) - 1))
		}
		c.recordWriteChain(e, start, pathNVMDirect, region.GAddr(0), len(reqs), writeBytes(reqs), 0)
		if e > end {
			end = e
		}
	}
	if direct {
		sp.MarkAt(span.StageFlushPersist, int64(end))
	}
	sp.FinishAt(int64(end))

	c.now = end
	for i, addr := range addrs {
		c.writes.Inc()
		s.conns[i].rec.RecordWrite(addr)
		c.afterAccess(s.conns[i])
	}
	c.writeLat.Record(simnet.Duration(end - start))
	return nil
}

// recordWriteChain accounts one batched write chain: the batch-length
// histogram and a flight event carrying the chain's size and path.
func (c *Client) recordWriteChain(end, start simnet.Time, path string, addr region.GAddr, batch, bytes, ringDepth int) {
	c.writeBatchLen.Record(time.Duration(batch))
	c.flight.Record(telemetry.Event{
		TimeNanos: int64(end), Client: c.name, Op: "write_multi",
		Addr: uint64(addr), Len: bytes, Path: path,
		Batch: batch, RingDepth: ringDepth, LatNanos: int64(end.Sub(start)),
	})
}

func stageBytes(reqs []proxy.StageReq) int {
	n := 0
	for _, r := range reqs {
		n += len(r.Data)
	}
	return n
}

func writeBytes(reqs []rdma.WriteReq) int {
	n := 0
	for _, r := range reqs {
		n += len(r.Src)
	}
	return n
}
