module gengar

go 1.22
