// Command gengar-mr runs a MapReduce job on the simulated pool and
// reports simulated phase timings — the standalone version of
// experiment E11.
//
// Examples:
//
//	gengar-mr -job wordcount
//	gengar-mr -job grep -pattern w01 -docs 64
//	gengar-mr -job sort -system dram-pool
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/hmem"
	"gengar/internal/mapreduce"
	"gengar/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengar-mr: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		job      = flag.String("job", "wordcount", "wordcount | grep | sort")
		pattern  = flag.String("pattern", "w00", "substring for grep")
		system   = flag.String("system", "gengar", "gengar | nvm-direct | dram-pool")
		docs     = flag.Int("docs", 32, "corpus documents")
		docWords = flag.Int("doc-words", 600, "words per document")
		vocab    = flag.Int("vocab", 200, "vocabulary size")
		mappers  = flag.Int("mappers", 4, "map tasks")
		reducers = flag.Int("reducers", 2, "reduce tasks")
		seed     = flag.Int64("seed", 41, "corpus seed")
		top      = flag.Int("top", 5, "result rows to print")
	)
	flag.Parse()

	var (
		mapf mapreduce.MapFunc
		redf mapreduce.ReduceFunc
		part mapreduce.Partitioner
	)
	switch *job {
	case "wordcount":
		mapf, redf = mapreduce.WordCount()
	case "grep":
		mapf, redf = mapreduce.Grep(*pattern)
	case "sort":
		mapf, redf = mapreduce.Sort()
		part = mapreduce.RangePartition
	default:
		return fmt.Errorf("unknown job %q", *job)
	}

	cfg := config.Default()
	switch *system {
	case "gengar":
	case "nvm-direct":
		cfg.Features = config.Features{}
	case "dram-pool":
		cfg.Features = config.Features{}
		cfg.PoolMedia = hmem.DRAMProfile()
	default:
		return fmt.Errorf("unknown system %q", *system)
	}

	cl, err := server.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	driver, err := core.Connect(cl, "driver")
	if err != nil {
		return err
	}
	defer driver.Close()

	corpus := mapreduce.Corpus(*seed, *docs, *docWords, *vocab)
	inputs, err := mapreduce.StoreInputs(driver, corpus)
	if err != nil {
		return err
	}

	n := *mappers
	if *reducers > n {
		n = *reducers
	}
	workers := make([]*core.Client, n)
	for i := range workers {
		w, err := core.Connect(cl, fmt.Sprintf("worker%d", i))
		if err != nil {
			return err
		}
		defer w.Close()
		workers[i] = w
	}
	j, err := mapreduce.NewJob(mapreduce.Config{
		Mappers: *mappers, Reducers: *reducers, Partitioner: part,
	}, workers, mapf, redf)
	if err != nil {
		return err
	}
	out, stats, err := j.Run(inputs)
	if err != nil {
		return err
	}

	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s on %s: %d keys\n", *job, *system, len(out))
	for i, k := range keys {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(keys)-*top)
			break
		}
		fmt.Printf("  %-10s %s\n", k, out[k])
	}
	fmt.Printf("job %v (map %v, reduce %v) — %d pairs, %d B shuffled [simulated]\n",
		stats.JobTime, stats.MapTime, stats.ReduceTime, stats.Pairs, stats.BytesShuffled)
	return nil
}
