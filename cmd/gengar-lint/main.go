// Command gengar-lint runs the Gengar invariant analyzers (see
// internal/analysis) over the module: lock-across-blocking,
// wqe-aliasing, telemetry-hygiene, hotpath-alloc, and errcheck-core,
// plus validation of //gengar:lint-ignore directives themselves.
//
// Usage:
//
//	gengar-lint [-json] [-C dir] [packages]
//
// Packages default to ./... resolved against the module root. Exit
// status: 0 clean, 1 findings, 2 operational error. With -json each
// finding is one JSON object on its own line (file, line, col,
// analyzer, message) for CI annotation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gengar/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON lines")
		dir     = flag.String("C", ".", "module directory to analyze")
	)
	flag.Parse()
	patterns := flag.Args()

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengar-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengar-lint: %v\n", err)
		return 2
	}
	findings := analysis.Run(pkgs, analysis.Analyzers())
	if len(findings) == 0 {
		return 0
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "gengar-lint: %v\n", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		fmt.Fprintf(os.Stderr, "gengar-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
	}
	return 1
}
