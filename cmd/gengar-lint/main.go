// Command gengar-lint runs the Gengar invariant analyzers (see
// internal/analysis) over the module: lock-across-blocking,
// wqe-aliasing, telemetry-hygiene, hotpath-alloc, errcheck-core, and
// the concurrency-protocol suite (atomic-mixed-access, cow-snapshot,
// seqlock-protocol, lock-order), plus validation of
// //gengar:lint-ignore directives themselves.
//
// Usage:
//
//	gengar-lint [-json] [-C dir] [-only analyzer,...] [packages]
//
// Packages are go-list patterns resolved against the module root and
// default to ./... (e.g. `gengar-lint ./internal/engine/...` checks one
// subtree). -only restricts the run to a comma-separated subset of
// analyzers (see -h for the registry); directive validation always
// checks names against the full registry, so -only never misreports a
// valid suppression. Exit status: 0 clean, 1 findings, 2 operational
// error. With -json each finding is one JSON object on its own line
// (file, line, col, analyzer, message) for CI annotation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gengar/internal/analysis"
)

func main() {
	os.Exit(run())
}

func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "usage: gengar-lint [-json] [-C dir] [-only analyzer,...] [packages]\n\n")
	fmt.Fprintf(out, "Packages are go-list patterns (default ./...), resolved against the module root.\n\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, "\nanalyzers:\n")
	for _, a := range analysis.Analyzers() {
		fmt.Fprintf(out, "  %-21s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(out, "\nexit status: 0 clean, 1 findings, 2 operational error\n")
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON lines")
		dir     = flag.String("C", ".", "module directory to analyze")
		only    = flag.String("only", "", "comma-separated analyzers to run (default: all)")
	)
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()

	suite := analysis.Analyzers()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "gengar-lint: unknown analyzer %q (see -h for the registry)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "gengar-lint: -only selected no analyzers\n")
			return 2
		}
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengar-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengar-lint: %v\n", err)
		return 2
	}
	findings := analysis.Run(pkgs, suite)
	if len(findings) == 0 {
		return 0
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "gengar-lint: %v\n", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		fmt.Fprintf(os.Stderr, "gengar-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
	}
	return 1
}
