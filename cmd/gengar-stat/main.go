// Command gengar-stat is a live status display for a gengard daemon's
// debug endpoint (gengard -debug-addr): it polls /metrics.json and
// renders the counters, gauges and latency digests as a compact table.
//
// Usage:
//
//	gengar-stat -addr localhost:8081              # refresh every 2s
//	gengar-stat -addr localhost:8081 -once        # one snapshot and exit
//	gengar-stat -addr localhost:8081 -filter tcp  # only gengar_tcp_* rows
//	gengar-stat -addr localhost:8081 -trace 16    # tail 16 slow traced ops
//
// When the daemon traces ops (gengard -trace-sample), the display adds
// a per-stage latency pane (gengar_trace_stage_seconds broken down by
// op and stage) and, with -trace N, the last N records of the slow-op
// ring from /debug/trace.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengar-stat: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "localhost:8081", "debug endpoint address (host:port or full URL)")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		once     = flag.Bool("once", false, "print one snapshot and exit")
		filter   = flag.String("filter", "", "only show metrics whose name contains this substring")
		traceN   = flag.Int("trace", 0, "also tail the last N slow-op trace records (0 disables)")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	url := base + "/metrics.json"

	var prev telemetry.Snapshot
	var prevAt time.Time
	for {
		snap, err := fetch(url)
		if err != nil {
			return err
		}
		now := time.Now()
		if !*once {
			fmt.Print("\033[H\033[2J") // clear screen between refreshes
		}
		render(os.Stdout, snap, prev, now.Sub(prevAt), *filter)
		renderShards(os.Stdout, snap)
		renderFlush(os.Stdout, snap)
		renderPeers(os.Stdout, snap)
		renderStages(os.Stdout, snap)
		if *traceN > 0 {
			recs, err := fetchTrace(base, *traceN)
			if err != nil {
				fmt.Fprintf(os.Stdout, "\n(trace ring unavailable: %v)\n", err)
			} else {
				renderTrace(os.Stdout, recs)
			}
		}
		if *once {
			return nil
		}
		prev, prevAt = snap, now
		time.Sleep(*interval)
	}
}

// fetchTrace tails the daemon's slow-op ring (JSONL, oldest first).
func fetchTrace(base string, n int) ([]span.Record, error) {
	resp, err := http.Get(fmt.Sprintf("%s/debug/trace?n=%d", base, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/debug/trace: %s", base, resp.Status)
	}
	var out []span.Record
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r span.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

func fetch(url string) (telemetry.Snapshot, error) {
	var s telemetry.Snapshot
	resp, err := http.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

// render prints counters (with a per-second rate once a previous
// snapshot exists), gauges and histogram digests.
func render(w *os.File, snap, prev telemetry.Snapshot, elapsed time.Duration, filter string) {
	rate := func(name string, labels map[string]string, v int64) string {
		if elapsed <= 0 || prev.Counters == nil {
			return ""
		}
		for _, p := range prev.Counters {
			if p.Name == name && sameLabels(p.Labels, labels) {
				return fmt.Sprintf("%.1f/s", float64(v-p.Value)/elapsed.Seconds())
			}
		}
		return ""
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "METRIC\tLABELS\tVALUE\tRATE")
	for _, c := range snap.Counters {
		if !strings.Contains(c.Name, filter) {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", c.Name, labelString(c.Labels), c.Value, rate(c.Name, c.Labels, c.Value))
	}
	for _, g := range snap.Gauges {
		if !strings.Contains(g.Name, filter) {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t\n", g.Name, labelString(g.Labels), g.Value)
	}
	tw.Flush()

	shown := false
	for _, h := range snap.Histograms {
		if !strings.Contains(h.Name, filter) || h.Count == 0 {
			continue
		}
		if !shown {
			fmt.Fprintln(w)
			fmt.Fprintln(tw, "LATENCY\tLABELS\tCOUNT\tP50\tP95\tP99\tMAX")
			shown = true
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			h.Name, labelString(h.Labels), h.Count,
			time.Duration(h.P50Nanos), time.Duration(h.P95Nanos),
			time.Duration(h.P99Nanos), time.Duration(h.MaxNanos))
	}
	tw.Flush()
}

// renderShards prints the allocator-balance pane: per-shard slab
// occupancy (gengar_alloc_shard_* gauges) for each arena, with the
// seqlock read-path counters alongside — together they show whether
// client fan-in is actually spreading across the sharded hot paths.
func renderShards(w io.Writer, snap telemetry.Snapshot) {
	type key struct{ pool, shard string }
	used := make(map[key]int64)
	slabs := make(map[key]int64)
	pools := make(map[string][]string) // pool -> shard ids, insertion order
	for _, g := range snap.Gauges {
		k := key{g.Labels["pool"], g.Labels["shard"]}
		switch g.Name {
		case "gengar_alloc_shard_used_bytes":
			if _, seen := used[k]; !seen {
				pools[k.pool] = append(pools[k.pool], k.shard)
			}
			used[k] = g.Value
		case "gengar_alloc_shard_slabs":
			slabs[k] = g.Value
		}
	}
	if len(pools) == 0 {
		return
	}
	names := make([]string, 0, len(pools))
	for p := range pools {
		names = append(names, p)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w)
	fmt.Fprintln(tw, "ARENA\tSHARD\tSLABS\tUSED")
	for _, p := range names {
		shards := pools[p]
		sort.Slice(shards, func(i, j int) bool {
			return len(shards[i]) < len(shards[j]) || (len(shards[i]) == len(shards[j]) && shards[i] < shards[j])
		})
		var totalUsed, totalSlabs int64
		for _, s := range shards {
			k := key{p, s}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", p, s, slabs[k], used[k])
			totalUsed += used[k]
			totalSlabs += slabs[k]
		}
		fmt.Fprintf(tw, "%s\t(all)\t%d\t%d\n", p, totalSlabs, totalUsed)
	}
	tw.Flush()

	var retries, fallbacks, hits int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "gengar_read_seqlock_retries_total":
			retries += c.Value
		case "gengar_read_seqlock_fallbacks_total":
			fallbacks += c.Value
		case "gengar_server_cache_hits_total":
			hits += c.Value
		}
	}
	fmt.Fprintf(w, "seqlock: %d hits, %d retries, %d locked fallbacks\n", hits, retries, fallbacks)
}

// renderFlush prints the adaptive-flushing pane: what the proxy flush
// path persisted and how much the coalescer merged (merge ratio =
// flushed records per NVM device write), the pacer's current backoff
// level and the effective NVM write bandwidth its meter sees, and the
// staged-to-applied flush-lag quantiles the -flush-max-lag bound
// governs. Shown only when the daemon runs with -proxy.
func renderFlush(w io.Writer, snap telemetry.Snapshot) {
	var staged, flushed, bytes, writes, coalesced, gateWaits int64
	seen := false
	for _, c := range snap.Counters {
		switch c.Name {
		case "gengar_proxy_staged_total":
			staged += c.Value
			seen = true
		case "gengar_proxy_flushed_total":
			flushed += c.Value
			seen = true
		case "gengar_proxy_flushed_bytes_total":
			bytes += c.Value
		case "gengar_proxy_nvm_writes_total":
			writes += c.Value
		case "gengar_proxy_coalesced_records_total":
			coalesced += c.Value
		case "gengar_proxy_flush_gate_waits_total":
			gateWaits += c.Value
		}
	}
	if !seen {
		return
	}
	var inflight, level, bw int64
	for _, g := range snap.Gauges {
		switch g.Name {
		case "gengar_proxy_inflight":
			inflight += g.Value
		case "gengar_proxy_flush_backoff_level":
			if g.Value > level {
				level = g.Value
			}
		case "gengar_proxy_flush_bw_bytes_per_sec":
			if g.Value > bw {
				bw = g.Value
			}
		}
	}
	merge := "-"
	if writes > 0 {
		merge = fmt.Sprintf("%.2fx", float64(flushed)/float64(writes))
	}
	bwStr := "-"
	if bw > 0 {
		bwStr = humanBytes(bw) + "/s"
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "flush: %d staged, %d flushed (%d inflight), %d nvm writes, merge %s (%d records coalesced), %s persisted\n",
		staged, flushed, inflight, writes, merge, coalesced, humanBytes(bytes))
	fmt.Fprintf(w, "pacer: backoff level %d, effective nvm write bw %s, %d gate waits\n",
		level, bwStr, gateWaits)
	for _, h := range snap.Histograms {
		if h.Name != "gengar_proxy_flush_lag_seconds" || h.Count == 0 {
			continue
		}
		suffix := ""
		if len(h.Labels) > 0 {
			suffix = " [" + labelString(h.Labels) + "]"
		}
		fmt.Fprintf(w, "flush lag%s: p50 %s  p95 %s  p99 %s  max %s (%d flushes)\n",
			suffix, time.Duration(h.P50Nanos), time.Duration(h.P95Nanos),
			time.Duration(h.P99Nanos), time.Duration(h.MaxNanos), h.Count)
	}
}

// humanBytes renders a byte count with a binary-prefix unit.
func humanBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%d B", v)
}

// renderPeers prints the distributed-cache pane: per-peer link state,
// spilled-copy occupancy and round-trip quantiles
// (gengar_tcp_peer_* series), the local/peer split of DRAM-served
// reads, and what this daemon hosts for its remote homes. Shown only
// when the daemon runs with -peers.
func renderPeers(w io.Writer, snap telemetry.Snapshot) {
	type peer struct {
		up, spilled int64
		rtt         *telemetry.HistogramSample
	}
	peers := make(map[string]*peer)
	get := func(id string) *peer {
		p := peers[id]
		if p == nil {
			p = &peer{}
			peers[id] = p
		}
		return p
	}
	var live int64
	for _, g := range snap.Gauges {
		switch g.Name {
		case "gengar_tcp_peer_up":
			get(g.Labels["peer"]).up = g.Value
		case "gengar_tcp_peer_spilled_bytes":
			get(g.Labels["peer"]).spilled = g.Value
		case "gengar_tcp_peers_live":
			live = g.Value
		}
	}
	if len(peers) == 0 {
		return
	}
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Name == "gengar_tcp_peer_rtt_seconds" {
			get(h.Labels["peer"]).rtt = h
		}
	}
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w)
	fmt.Fprintln(tw, "PEER\tUP\tSPILLED\tRTT-OPS\tRTT-P50\tRTT-P99\tRTT-MAX")
	for _, id := range ids {
		p := peers[id]
		up := "down"
		if p.up != 0 {
			up = "up"
		}
		if p.rtt == nil || p.rtt.Count == 0 {
			fmt.Fprintf(tw, "%s\t%s\t%d\t0\t-\t-\t-\n", id, up, p.spilled)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\n",
			id, up, p.spilled, p.rtt.Count,
			time.Duration(p.rtt.P50Nanos), time.Duration(p.rtt.P99Nanos),
			time.Duration(p.rtt.MaxNanos))
	}
	tw.Flush()

	var localHits, peerHits, peerErrs, hostedReads int64
	var hostedCopies, hostedBytes int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "gengar_server_cache_hits_total":
			localHits += c.Value
		case "gengar_server_peer_hits_total":
			peerHits += c.Value
		case "gengar_server_peer_copy_errors_total":
			peerErrs += c.Value
		case "gengar_server_hosted_reads_total":
			hostedReads += c.Value
		}
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "gengar_server_hosted_copies":
			hostedCopies += g.Value
		case "gengar_server_hosted_bytes":
			hostedBytes += g.Value
		}
	}
	frac := func(part, whole int64) string {
		if whole == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
	}
	dram := localHits + peerHits
	fmt.Fprintf(w, "dram hits: %d local + %d peer (%s peer-served), %d peer errors, %d links live\n",
		localHits, peerHits, frac(peerHits, dram), peerErrs, live)
	fmt.Fprintf(w, "hosting for remote homes: %d copies, %d bytes, %d reads served\n",
		hostedCopies, hostedBytes, hostedReads)
}

// renderStages prints the latency-anatomy pane: the per-(op, stage)
// quantiles the tracer exports as gengar_trace_stage_seconds cells.
func renderStages(w io.Writer, snap telemetry.Snapshot) {
	type row struct {
		op, stage string
		h         telemetry.HistogramSample
	}
	var rows []row
	for _, h := range snap.Histograms {
		if h.Name != span.StageMetric || h.Count == 0 {
			continue
		}
		rows = append(rows, row{op: h.Labels["op"], stage: h.Labels["stage"], h: h})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].op != rows[j].op {
			return rows[i].op < rows[j].op
		}
		return rows[i].stage < rows[j].stage
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w)
	fmt.Fprintln(tw, "OP\tSTAGE\tCOUNT\tP50\tP99\tMAX")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			r.op, r.stage, r.h.Count,
			time.Duration(r.h.P50Nanos), time.Duration(r.h.P99Nanos), time.Duration(r.h.MaxNanos))
	}
	tw.Flush()
}

// renderTrace prints the slow-op ring tail, one line per record with
// its per-stage breakdown.
func renderTrace(w io.Writer, recs []span.Record) {
	if len(recs) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w)
	fmt.Fprintln(tw, "TRACE\tOP\tSIDE\tTOTAL\tSTAGES")
	for _, r := range recs {
		parts := make([]string, 0, len(r.Stages))
		for _, s := range r.Stages {
			parts = append(parts, fmt.Sprintf("%s=%s", s.Stage, time.Duration(s.Nanos)))
		}
		if r.Dropped > 0 {
			parts = append(parts, fmt.Sprintf("(+%d dropped)", r.Dropped))
		}
		fmt.Fprintf(tw, "%016x\t%s\t%s\t%s\t%s\n",
			r.TraceID, r.Op, r.Side, time.Duration(r.TotalNanos), strings.Join(parts, " "))
	}
	tw.Flush()
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

func sameLabels(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
