// Command gengar-ycsb drives YCSB core workloads against the simulated
// pool and prints simulated throughput and latency — the standalone
// version of experiment E7 with every knob exposed.
//
// Examples:
//
//	gengar-ycsb -workload A -clients 8
//	gengar-ycsb -workload C -system nvm-direct -records 8192 -theta 1.2
//	gengar-ycsb -workload all -system all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/hmem"
	"gengar/internal/server"
	"gengar/internal/ycsb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengar-ycsb: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload   = flag.String("workload", "A", "YCSB workload A-F, or 'all'")
		system     = flag.String("system", "gengar", "gengar | nvm-direct | dram-pool | all")
		clients    = flag.Int("clients", 8, "concurrent closed-loop clients")
		records    = flag.Int("records", 4096, "table size")
		recordSize = flag.Int("record-size", 1024, "record bytes")
		ops        = flag.Int("ops", 2000, "operations per client")
		theta      = flag.Float64("theta", 0, "override zipfian skew (0 = workload default)")
		servers    = flag.Int("servers", 4, "memory servers")
		seed       = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	var workloads []ycsb.Workload
	if strings.EqualFold(*workload, "all") {
		workloads = ycsb.Core()
	} else {
		for _, w := range ycsb.Core() {
			if strings.EqualFold(w.Name, *workload) {
				workloads = []ycsb.Workload{w}
			}
		}
		if len(workloads) == 0 {
			return fmt.Errorf("unknown workload %q", *workload)
		}
	}

	var systems []string
	if strings.EqualFold(*system, "all") {
		systems = []string{"gengar", "nvm-direct", "dram-pool"}
	} else {
		systems = []string{strings.ToLower(*system)}
	}

	fmt.Printf("%-9s %-11s %10s %10s %10s %8s\n",
		"workload", "system", "kops/s", "read_us", "write_us", "hit")
	for _, w := range workloads {
		if *theta > 0 {
			w.Theta = *theta
		}
		w.RecordSize = *recordSize
		for _, sysName := range systems {
			cfg, err := systemConfig(sysName, *servers, *records, *recordSize)
			if err != nil {
				return err
			}
			res, err := runOne(cfg, w, *clients, *records, *ops, *seed)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", w.Name, sysName, err)
			}
			read := res.PerKind[ycsb.OpRead].Mean
			write := res.PerKind[ycsb.OpUpdate].Mean
			if write == 0 {
				write = res.PerKind[ycsb.OpReadModifyWrite].Mean
			}
			fmt.Printf("%-9s %-11s %10.1f %10.2f %10.2f %7.1f%%\n",
				w.Name, sysName, res.Throughput/1e3,
				float64(read.Nanoseconds())/1e3, float64(write.Nanoseconds())/1e3,
				100*res.HitRate)
		}
	}
	return nil
}

func systemConfig(name string, servers, records, recordSize int) (config.Cluster, error) {
	cfg := config.Default()
	switch name {
	case "gengar":
	case "nvm-direct":
		cfg.Features = config.Features{}
	case "dram-pool":
		cfg.Features = config.Features{}
		cfg.PoolMedia = hmem.DRAMProfile()
	default:
		return cfg, fmt.Errorf("unknown system %q", name)
	}
	cfg.Servers = servers
	dataset := int64(records) * int64(recordSize)
	for cfg.NVMBytes < dataset*4 {
		cfg.NVMBytes *= 2
	}
	return cfg, nil
}

func runOne(cfg config.Cluster, w ycsb.Workload, clients, records, ops int, seed int64) (ycsb.Result, error) {
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return ycsb.Result{}, err
	}
	defer cl.Close()
	loader, err := core.Connect(cl, "loader")
	if err != nil {
		return ycsb.Result{}, err
	}
	defer loader.Close()
	table, err := ycsb.Load(loader, records, w.RecordSize)
	if err != nil {
		return ycsb.Result{}, err
	}
	var cs []*core.Client
	for i := 0; i < clients; i++ {
		c, err := core.Connect(cl, fmt.Sprintf("c%d", i))
		if err != nil {
			return ycsb.Result{}, err
		}
		defer c.Close()
		cs = append(cs, c)
	}
	// Warm up, settle, sync views — steady state, as in the harness.
	if _, err := ycsb.Run(cs, table, w, ops/3+1, seed+7777); err != nil {
		return ycsb.Result{}, err
	}
	for pass := 0; pass < 2; pass++ {
		for _, s := range cl.Registry().Servers() {
			if err := s.Engine().Barrier(); err != nil {
				return ycsb.Result{}, err
			}
		}
		for _, c := range cs {
			if err := c.SyncAllViews(); err != nil {
				return ycsb.Result{}, err
			}
		}
	}
	return ycsb.Run(cs, table, w, ops, seed)
}
