// Command gengard is a Gengar pool daemon for the real-network
// deployment mode: it exports a share of this machine's memory as the
// home of one server ID in the global address space, serving allocation,
// data access and leased locks over TCP (see internal/tcpnet).
//
// A three-server pool on one machine:
//
//	gengard -id 1 -listen :7001 &
//	gengard -id 2 -listen :7002 &
//	gengard -id 3 -listen :7003 &
//	gengar-cli -servers localhost:7001,localhost:7002,localhost:7003 demo
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gengar/internal/tcpnet"
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengard: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id          = flag.Uint("id", 1, "server ID (nonzero; high 16 bits of homed addresses)")
		listen      = flag.String("listen", ":7001", "TCP listen address")
		poolBytes   = flag.Int64("pool-bytes", 256<<20, "exported pool capacity (power of two)")
		cacheBytes  = flag.Int64("cache-bytes", 8<<20, "DRAM cache arena for promoted hot objects (power of two)")
		ringBytes   = flag.Int64("ring-bytes", 8<<20, "staging-ring arena backing proxied writes (power of two)")
		digestEvery = flag.Int("digest-every", 64, "data accesses folded into one server-side hotness digest")
		noCache     = flag.Bool("no-cache", false, "disable hotness tracking and DRAM cache promotion")
		peers       = flag.String("peers", "", "comma-separated addresses of peer gengard daemons; joins the distributed DRAM cache (spill hot copies into peers' arenas under pressure)")
		noProxy     = flag.Bool("no-proxy", false, "disable staged writes (writes go straight to the pool)")
		flushAdapt  = flag.Bool("flush-adaptive", true, "interference-aware flushing: flushers coalesce and back off while foreground read latency climbs")
		flushMaxLag = flag.Duration("flush-max-lag", 50*time.Millisecond, "bound on flush lag under adaptive backoff (0 selects the proxy default)")
		lease       = flag.Duration("lease", 5*time.Second, "default lock lease")
		lockWait    = flag.Duration("lock-wait", 2*time.Second, "lock acquire timeout")
		dataFile    = flag.String("data", "", "snapshot file: restored on start if present, written on shutdown")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/events and /debug/trace on this address (empty disables)")
		nagle       = flag.Bool("nagle", false, "re-enable Nagle's algorithm on accepted connections (default sets TCP_NODELAY)")
		keepAlive   = flag.Duration("keepalive", 0, "TCP keep-alive probe period on accepted connections (0 selects 30s, negative disables)")
		traceSample = flag.Int("trace-sample", 64, "trace one in N server-initiated ops (0 disables local sampling; client-sampled ops are always traced)")
		traceSlow   = flag.Duration("trace-slow", time.Millisecond, "retain traced ops at least this slow in the /debug/trace ring (0 retains all)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the debug address")
	)
	flag.Parse()

	srv, err := tcpnet.NewPoolServer(tcpnet.ServerConfig{
		ID:             uint16(*id),
		PoolBytes:      *poolBytes,
		CacheBytes:     *cacheBytes,
		RingBytes:      *ringBytes,
		DigestEvery:    *digestEvery,
		NoCache:        *noCache,
		NoProxy:        *noProxy,
		Peers:          splitPeers(*peers),
		DefaultLease:   *lease,
		AcquireTimeout: *lockWait,
		Nagle:          *nagle,
		KeepAlive:      *keepAlive,
		TraceSample:    *traceSample,
		TraceSlow:      *traceSlow,
		FlushAdaptive:  *flushAdapt,
		FlushMaxLag:    *flushMaxLag,
	})
	if err != nil {
		return err
	}
	if *dataFile != "" {
		switch err := srv.RestoreSnapshot(*dataFile); {
		case err == nil:
			log.Printf("gengard: restored pool from %s", *dataFile)
		case os.IsNotExist(err):
			log.Printf("gengard: no snapshot at %s; starting empty", *dataFile)
		default:
			return fmt.Errorf("restore %s: %w", *dataFile, err)
		}
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("gengard: server %d exporting %d MiB on %s", *id, *poolBytes>>20, lis.Addr())

	if *debugAddr != "" {
		dlis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("gengard: debug endpoints on http://%s/{metrics,metrics.json,healthz,debug/events,debug/trace}", dlis.Addr())
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(srv.Telemetry(), srv.Recorder()))
		mux.Handle("/debug/trace", span.Handler(srv.Tracer()))
		if *pprofOn {
			// Off by default: profiling endpoints expose internals and
			// cost CPU when scraped, so they are an explicit opt-in.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("gengard: pprof on http://%s/debug/pprof/", dlis.Addr())
		}
		go func() {
			if err := http.Serve(dlis, mux); err != nil {
				log.Printf("gengard: debug server: %v", err)
			}
		}()
	}

	start := time.Now()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("gengard: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(lis); err != nil {
		return err
	}
	logFinalStats(srv, time.Since(start))
	if *dataFile != "" {
		if err := srv.WriteSnapshot(*dataFile); err != nil {
			return fmt.Errorf("snapshot %s: %w", *dataFile, err)
		}
		log.Printf("gengard: pool snapshotted to %s", *dataFile)
	}
	return nil
}

// splitPeers parses the -peers flag: comma-separated dial addresses,
// empty entries dropped so trailing commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// logFinalStats summarizes the daemon's lifetime activity from its
// telemetry snapshot as it exits.
func logFinalStats(srv *tcpnet.PoolServer, uptime time.Duration) {
	s := srv.Telemetry().Snapshot()
	log.Printf("gengard: final stats: uptime=%s ops=%d rx_bytes=%d tx_bytes=%d failures=%d objects=%d pool_used=%d events=%d",
		uptime.Round(time.Millisecond),
		s.Sum("gengar_tcp_ops_total"),
		s.Sum("gengar_tcp_rx_bytes_total"),
		s.Sum("gengar_tcp_tx_bytes_total"),
		s.Sum("gengar_tcp_failures_total"),
		s.Sum("gengar_tcp_objects"),
		s.Sum("gengar_tcp_pool_used_bytes"),
		srv.Recorder().Total())
	es := srv.Engine().Stats()
	log.Printf("gengard: engine stats: cache_hits=%d peer_hits=%d cache_misses=%d staged=%d flushed=%d promotions=%d demotions=%d promoted=%d digests=%d remap_epoch=%d",
		es.Hits, es.PeerHits, es.Misses, es.Proxy.Staged, es.Proxy.Flushed,
		es.Promotions, es.Demotions, es.Promoted, es.Digests, es.RemapEpoch)
	if es.PeerErrors+es.HostedReads > 0 || es.HostedCopies > 0 {
		log.Printf("gengard: peer cache stats: hosted_copies=%d hosted_bytes=%d hosted_reads=%d peer_errors=%d",
			es.HostedCopies, es.HostedBytes, es.HostedReads, es.PeerErrors)
	}
}
