// Command gengar-bench regenerates the evaluation tables and figures
// (E1–E12, see DESIGN.md). Each experiment prints an aligned table to
// stdout; -csv switches to CSV for plotting.
//
// Usage:
//
//	gengar-bench            # run everything at full scale
//	gengar-bench -exp E7    # one experiment
//	gengar-bench -quick     # fast, reduced scale
//	gengar-bench -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gengar/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengar-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "", "experiment ID to run (default: all)")
		quick  = flag.Bool("quick", false, "reduced scale for a fast pass")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outdir = flag.String("outdir", "", "also write one CSV per experiment into this directory")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e.ID)
		}
		return nil
	}
	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	runOne := func(id string, r bench.Runner) error {
		start := time.Now()
		t, err := r(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
			fmt.Printf("(wall %.1fs)\n\n", time.Since(start).Seconds())
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, strings.ToLower(id)+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				return fmt.Errorf("%s: write %s: %w", id, path, err)
			}
			if t.Telemetry != nil {
				tpath := filepath.Join(*outdir, strings.ToLower(id)+".telemetry.json")
				var b strings.Builder
				if err := t.Telemetry.WriteJSON(&b); err != nil {
					return fmt.Errorf("%s: encode telemetry: %w", id, err)
				}
				if err := os.WriteFile(tpath, []byte(b.String()), 0o644); err != nil {
					return fmt.Errorf("%s: write %s: %w", id, tpath, err)
				}
			}
		}
		return nil
	}

	if *exp != "" {
		for _, e := range bench.Experiments() {
			if e.ID == *exp {
				return runOne(e.ID, e.Run)
			}
		}
		return fmt.Errorf("unknown experiment %q (try -list)", *exp)
	}
	for _, e := range bench.Experiments() {
		if err := runOne(e.ID, e.Run); err != nil {
			return err
		}
	}
	return nil
}
