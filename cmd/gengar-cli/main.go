// Command gengar-cli exercises a pool of gengard daemons over TCP:
// allocate, read, write, lock and benchmark from the command line.
//
// Usage:
//
//	gengar-cli -servers host:7001,host:7002 <command> [args]
//
// Commands:
//
//	stats                      print per-server usage
//	malloc <bytes>             allocate; prints the global address
//	free <gaddr>               release an allocation
//	write <gaddr> <text>       store text at an address
//	read <gaddr> <bytes>       fetch bytes; prints them as text
//	demo                       end-to-end smoke: malloc/write/read/lock/free
//	hot <gaddr> [reads]        report access weight and wait for promotion
//	bench [ops] [bytes]        closed-loop write+read latency microbench
//
// Global addresses print and parse as server:offset, e.g. 1:0x40.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gengar/internal/hotness"
	"gengar/internal/region"
	"gengar/internal/tcpnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengar-cli: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers = flag.String("servers", "localhost:7001", "comma-separated gengard addresses")
		timeout = flag.Duration("timeout", 2*time.Second, "dial timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("no command (try: stats, malloc, free, write, read, demo, hot, bench)")
	}

	pool, err := tcpnet.Dial(strings.Split(*servers, ","), *timeout)
	if err != nil {
		return err
	}
	defer pool.Close()

	switch args[0] {
	case "stats":
		return stats(pool)
	case "malloc":
		if len(args) != 2 {
			return fmt.Errorf("usage: malloc <bytes>")
		}
		size, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		addr, err := pool.Malloc(size)
		if err != nil {
			return err
		}
		fmt.Println(formatAddr(addr))
		return nil
	case "free":
		if len(args) != 2 {
			return fmt.Errorf("usage: free <gaddr>")
		}
		addr, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		return pool.Free(addr)
	case "write":
		if len(args) != 3 {
			return fmt.Errorf("usage: write <gaddr> <text>")
		}
		addr, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		return pool.Write(addr, []byte(args[2]))
	case "read":
		if len(args) != 3 {
			return fmt.Errorf("usage: read <gaddr> <bytes>")
		}
		addr, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		buf := make([]byte, n)
		if err := pool.Read(addr, buf); err != nil {
			return err
		}
		fmt.Printf("%s\n", buf)
		return nil
	case "demo":
		return demo(pool)
	case "hot":
		if len(args) < 2 || len(args) > 3 {
			return fmt.Errorf("usage: hot <gaddr> [reads]")
		}
		addr, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		reads := uint64(1000)
		if len(args) == 3 {
			if reads, err = strconv.ParseUint(args[2], 10, 32); err != nil {
				return err
			}
		}
		return hot(pool, addr, reads)
	case "bench":
		ops, size := 1000, 1024
		if len(args) > 1 {
			if ops, err = strconv.Atoi(args[1]); err != nil {
				return err
			}
		}
		if len(args) > 2 {
			if size, err = strconv.Atoi(args[2]); err != nil {
				return err
			}
		}
		return bench(pool, ops, size)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func stats(pool *tcpnet.Pool) error {
	sts, err := pool.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %-12s %-12s %-8s %-8s %-8s %-8s %-8s %-9s %s\n",
		"server", "objects", "used_B", "capacity_B", "ops", "hits", "misses", "staged", "flushed", "promoted", "digests")
	for _, s := range sts {
		fmt.Printf("%-8d %-10d %-12d %-12d %-8d %-8d %-8d %-8d %-8d %-9d %d\n",
			s.ServerID, s.Objects, s.PoolUsed, s.PoolBytes, s.Ops,
			s.CacheHits, s.CacheMisses, s.Staged, s.Flushed, s.Promoted, s.Digests)
	}
	// The distributed-cache columns only say something when a daemon
	// runs in a -peers mesh; keep the lone-daemon output unchanged.
	cluster := false
	for _, s := range sts {
		if s.PeersLive > 0 || s.PeerHits > 0 || s.HostedCopies > 0 || s.SpilledBytes > 0 {
			cluster = true
			break
		}
	}
	if !cluster {
		return nil
	}
	fmt.Printf("\n%-8s %-10s %-10s %-12s %-14s %-14s %s\n",
		"server", "peer_hits", "peer_errs", "spilled_B", "hosted_copies", "hosted_B", "peers_live")
	for _, s := range sts {
		fmt.Printf("%-8d %-10d %-10d %-12d %-14d %-14d %d\n",
			s.ServerID, s.PeerHits, s.PeerErrors, s.SpilledBytes,
			s.HostedCopies, s.HostedBytes, s.PeersLive)
	}
	return nil
}

// hot reports synthetic access weight for an address so its home daemon
// considers promoting the object, then polls until a read is served from
// the DRAM cache (or the deadline passes).
func hot(pool *tcpnet.Pool, addr region.GAddr, reads uint64) error {
	epochs, err := pool.Digest([]hotness.Entry{{Addr: addr, Reads: reads}})
	if err != nil {
		return err
	}
	fmt.Printf("digested %d reads for %s (remap epoch %d)\n", reads, formatAddr(addr), epochs[addr.Server()])
	buf := make([]byte, 1)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		hit, err := pool.ReadCheck(addr, buf)
		if err != nil {
			return err
		}
		if hit {
			fmt.Println("promoted: reads now served from the DRAM cache")
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("not promoted (weight below threshold, or cache disabled/full)")
	return nil
}

func demo(pool *tcpnet.Pool) error {
	addr, err := pool.Malloc(64)
	if err != nil {
		return err
	}
	fmt.Printf("malloc 64B -> %s\n", formatAddr(addr))
	if err := pool.LockExclusive(addr); err != nil {
		return err
	}
	if err := pool.Write(addr, []byte("gengar over tcp")); err != nil {
		return err
	}
	if err := pool.UnlockExclusive(addr); err != nil {
		return err
	}
	buf := make([]byte, 15)
	if err := pool.LockShared(addr); err != nil {
		return err
	}
	if err := pool.Read(addr, buf); err != nil {
		return err
	}
	if err := pool.UnlockShared(addr); err != nil {
		return err
	}
	fmt.Printf("read back under lock: %q\n", buf)
	if err := pool.Free(addr); err != nil {
		return err
	}
	fmt.Println("freed; demo ok")
	return nil
}

func bench(pool *tcpnet.Pool, ops, size int) error {
	addr, err := pool.Malloc(int64(size))
	if err != nil {
		return err
	}
	defer func() { _ = pool.Free(addr) }()
	buf := make([]byte, size)

	wStart := time.Now()
	for i := 0; i < ops; i++ {
		if err := pool.Write(addr, buf); err != nil {
			return err
		}
	}
	wDur := time.Since(wStart)
	rStart := time.Now()
	for i := 0; i < ops; i++ {
		if err := pool.Read(addr, buf); err != nil {
			return err
		}
	}
	rDur := time.Since(rStart)
	fmt.Printf("%d x %dB over TCP (wall clock):\n", ops, size)
	fmt.Printf("  write: %8v/op  (%.0f ops/s)\n", wDur/time.Duration(ops), float64(ops)/wDur.Seconds())
	fmt.Printf("  read:  %8v/op  (%.0f ops/s)\n", rDur/time.Duration(ops), float64(ops)/rDur.Seconds())
	return nil
}

func formatAddr(a region.GAddr) string {
	return fmt.Sprintf("%d:%#x", a.Server(), a.Offset())
}

func parseAddr(s string) (region.GAddr, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return region.NilGAddr, fmt.Errorf("bad address %q (want server:offset)", s)
	}
	srv, err := strconv.ParseUint(parts[0], 10, 16)
	if err != nil {
		return region.NilGAddr, err
	}
	off, err := strconv.ParseInt(parts[1], 0, 64)
	if err != nil {
		return region.NilGAddr, err
	}
	return region.NewGAddr(uint16(srv), off)
}
