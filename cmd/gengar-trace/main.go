// Command gengar-trace synthesizes and replays pool operation traces:
// capture a representative workload once, replay it against any system
// variant, and compare simulated timings apples-to-apples.
//
// Examples:
//
//	gengar-trace synth -out w.trace -objects 1024 -ops 20000
//	gengar-trace replay -in w.trace -system gengar
//	gengar-trace replay -in w.trace -system nvm-direct
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/hmem"
	"gengar/internal/server"
	"gengar/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengar-trace: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: gengar-trace synth|replay [flags]")
	}
	switch os.Args[1] {
	case "synth":
		return synth(os.Args[2:])
	case "replay":
		return replay(os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	var (
		out      = fs.String("out", "workload.trace", "output file")
		objects  = fs.Int("objects", 1024, "working-set objects")
		objSize  = fs.Int64("obj-size", 1024, "object size in bytes")
		ops      = fs.Int("ops", 20000, "operations after the load phase")
		readFrac = fs.Float64("read-frac", 0.7, "fraction of ops that read")
		lockFrac = fs.Float64("lock-frac", 0.1, "fraction of writes under locks")
		seed     = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for _, op := range trace.Synthesize(*seed, *objects, *objSize, *ops, *readFrac, *lockFrac) {
		if err := w.Append(op); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d ops to %s\n", w.Len(), *out)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		in      = fs.String("in", "workload.trace", "trace file")
		system  = fs.String("system", "gengar", "gengar | nvm-direct | dram-pool")
		servers = fs.Int("servers", 4, "memory servers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ops, err := trace.Read(f)
	_ = f.Close()
	if err != nil {
		return err
	}

	cfg := config.Default()
	switch *system {
	case "gengar":
	case "nvm-direct":
		cfg.Features = config.Features{}
	case "dram-pool":
		cfg.Features = config.Features{}
		cfg.PoolMedia = hmem.DRAMProfile()
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	cfg.Servers = *servers

	cl, err := server.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "replayer")
	if err != nil {
		return err
	}
	defer client.Close()

	res, err := trace.Replay(client, ops)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d ops in %v simulated (%.0f ops/s)\n",
		*system, res.Ops, res.SimDuration, res.Throughput)
	kinds := make([]trace.Kind, 0, len(res.PerKind))
	for k := range res.PerKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		s := res.PerKind[k]
		fmt.Printf("  %-8s n=%-7d mean=%-10v p99=%v\n", k, s.Count, s.Mean, s.P99)
	}
	st := client.Stats()
	fmt.Printf("  cache hit rate %.1f%%\n", 100*st.HitRate())
	return nil
}
